#ifndef ARK_SUPPORT_SPARSE_H
#define ARK_SUPPORT_SPARSE_H

/**
 * @file
 * Sparse linear algebra for the batched SPICE transient engine.
 *
 * MNA matrices from mapped dynamical graphs are extremely sparse (a
 * handful of entries per row: a grounded capacitor plus the incident
 * couplings), so the dense O(n^3) factorization in linalg.h wastes
 * almost all of its work once lines grow past a few sections. This
 * module provides a CSR matrix and a left-looking (Gilbert-Peierls)
 * sparse LU with partial pivoting whose pivot order and fill pattern
 * are recorded at first factorization: refactor() then redoes only
 * the numeric phase for any matrix with the same sparsity pattern.
 * That replay is what lets a sweep of same-topology netlists share
 * one symbolic analysis (spice::TransientBatch).
 */

#include <cstddef>
#include <vector>

#include "support/linalg.h"

namespace ark::support {

/** One (row, col, value) contribution; duplicates are summed. */
struct Triplet
{
    std::size_t row = 0;
    std::size_t col = 0;
    double value = 0.0;
};

/**
 * Compressed-sparse-row matrix of doubles.
 *
 * The stored pattern is value-independent: entries assembled with a
 * zero value stay stored, so matrices built from the same stamp
 * positions compare samePattern() regardless of their parameters —
 * the property the shared-structure factorization reuse relies on.
 */
class SparseMatrix
{
  public:
    SparseMatrix() = default;

    /** rows x cols with no stored entries. */
    SparseMatrix(std::size_t rows, std::size_t cols);

    /**
     * Builds from triplets (duplicate positions summed, zeros kept).
     * Column indices end up sorted within each row.
     */
    static SparseMatrix fromTriplets(std::size_t rows, std::size_t cols,
                                     std::vector<Triplet> triplets);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t nonZeros() const { return col_.size(); }

    /** Stored value at (r, c); 0.0 when the position is not stored. */
    double at(std::size_t r, std::size_t c) const;

    /** y = A x (y must hold rows() entries, x cols() entries). */
    void applyInto(const double *x, double *y) const;
    std::vector<double> apply(const std::vector<double> &x) const;

    /** Same shape and same stored positions (values ignored). */
    bool samePattern(const SparseMatrix &other) const;

    /** samePattern plus bit-identical stored values. */
    bool sameValues(const SparseMatrix &other) const;

    /** @name Raw CSR access (kernels, factorization). */
    /// @{
    const std::vector<std::size_t> &rowPtr() const { return rowPtr_; }
    const std::vector<std::size_t> &colIndex() const { return col_; }
    const std::vector<double> &values() const { return values_; }
    /// @}

    /** Dense copy (tests, fallbacks). */
    Matrix toDense() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::size_t> rowPtr_; ///< rows()+1 offsets into col_/values_.
    std::vector<std::size_t> col_;
    std::vector<double> values_;
};

/**
 * Sparse LU factorization with partial pivoting.
 *
 * Construction runs the full left-looking factorization: a structural
 * reach (DFS over the growing L graph) per column, magnitude pivot
 * selection, and fill recording. The resulting pivot order and L/U
 * patterns are kept, so refactor() can rebind the factorization to a
 * new matrix with the SAME pattern by replaying only the numeric
 * updates — no graph traversal, no pivot search. A batch of
 * same-topology MNA systems factors symbolically once and numerically
 * per instance; instances whose values match bit-for-bit skip even
 * that and share the factors outright (solve() is const and
 * thread-safe).
 */
class SparseLu
{
  public:
    /**
     * Factors a square sparse matrix.
     * @throws ArkError (Sim) when the matrix is singular.
     */
    explicit SparseLu(const SparseMatrix &a);

    std::size_t size() const { return n_; }

    /**
     * Numeric-only refactorization for a matrix with the same pattern
     * as the one factored at construction, reusing the recorded pivot
     * order. @throws ArkError (Sim) when a reused pivot collapses —
     * zero, or small relative to its column (the order that was
     * stable for the original values need not be for the new ones);
     * callers then fall back to a fresh SparseLu with its own pivot
     * search. On throw the factors are invalid; discard the object.
     */
    void refactor(const SparseMatrix &a);

    /** Solves A x = b. */
    std::vector<double> solve(const std::vector<double> &b) const;

    /** Allocation-free solve; b and x must not alias. */
    void solveInto(const double *b, double *x) const;

  private:
    std::size_t n_ = 0;

    /** Pattern of the factored matrix (for refactor verification). */
    std::vector<std::size_t> aRowPtr_;
    std::vector<std::size_t> aCol_;

    /** Per column j: (pivot-space row, index into a CSR values). */
    std::vector<std::size_t> aEntryPtr_;
    std::vector<std::size_t> aEntryRow_;
    std::vector<std::size_t> aEntryCsr_;

    /** rowOfPivot_[k] = original row pivoted at step k. */
    std::vector<std::size_t> rowOfPivot_;

    /** L (unit diagonal implicit), CSC, rows in pivot space. */
    std::vector<std::size_t> lColPtr_;
    std::vector<std::size_t> lRow_;
    std::vector<double> lVal_;

    /** U strictly above the diagonal, CSC, rows in pivot space. */
    std::vector<std::size_t> uColPtr_;
    std::vector<std::size_t> uRow_;
    std::vector<double> uVal_;
    std::vector<double> uDiag_;
};

} // namespace ark::support

#endif // ARK_SUPPORT_SPARSE_H
