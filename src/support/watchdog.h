// Stall watchdog: detects batch runs that have stopped making
// progress and raises a structured health signal.
//
// The engines already report progress at instance granularity
// (sim::BatchRunner's instanceDone plumbing, the SPICE ProgressTicker).
// The watchdog taps those same flush points: each active run
// registers a StallWatchdog::Run scope and calls heartbeat() whenever
// an instance completes. A monitor thread sweeps the registered runs
// and, when one has gone `stallInterval` without a heartbeat, sets
// the `ark.health.stalled_runs` gauge, bumps the
// `ark.health.stall_events` counter, and emits one rate-limited log
// event per stall episode. The flag clears (and a resumption note is
// logged) as soon as the run beats again; both clear when it ends.
//
// Opt-in and observation-only: the watchdog is disabled by default
// (stallInterval == 0), a disabled watchdog costs one relaxed atomic
// load per Run construction and a null-pointer check per heartbeat,
// and an enabled one never steers execution — bit-identity with the
// watchdog off is regression-tested in telemetry_test.

#pragma once

#include <chrono>
#include <cstddef>
#include <memory>

namespace ark::telemetry {

namespace detail {
struct WatchdogRunState;
}

class StallWatchdog {
public:
  static StallWatchdog &shared();

  // Interval of no progress after which a run counts as stalled.
  // Zero (the default) disables the watchdog and stops its monitor
  // thread; a positive interval starts it.
  void setStallInterval(std::chrono::milliseconds interval);
  std::chrono::milliseconds stallInterval() const;
  bool enabled() const;

  // RAII registration of one active batch run. Default-constructed
  // or constructed while the watchdog is disabled, it is inert.
  class Run {
  public:
    Run() = default;
    // `kind` must be a string literal (the state stores the pointer).
    Run(const char *kind, std::size_t instances);
    ~Run();

    Run(const Run &) = delete;
    Run &operator=(const Run &) = delete;

    // Marks progress. Lock-free: one relaxed store.
    void heartbeat();
    bool active() const { return state_ != nullptr; }

  private:
    std::shared_ptr<detail::WatchdogRunState> state_;
  };

  std::size_t activeRuns() const;
  std::size_t stalledRuns() const;

  // Forces one monitor sweep on the calling thread (tests poll this
  // instead of racing the monitor's own cadence).
  void pollNow();

private:
  StallWatchdog();
  ~StallWatchdog();
  struct Impl;
  Impl *impl_;
};

} // namespace ark::telemetry
