#ifndef ARK_SUPPORT_STRINGS_H
#define ARK_SUPPORT_STRINGS_H

/**
 * @file
 * Small string helpers used across the frontend and report writers.
 */

#include <string>
#include <string_view>
#include <vector>

namespace ark::support {

/** Splits on a delimiter character; empty fields are preserved. */
std::vector<std::string> split(std::string_view text, char delim);

/** Joins pieces with a separator. */
std::string join(const std::vector<std::string> &pieces,
                 std::string_view sep);

/** Strips ASCII whitespace from both ends. */
std::string trim(std::string_view text);

/** True if text begins with the given prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** True if text ends with the given suffix. */
bool endsWith(std::string_view text, std::string_view suffix);

/** Formats a double compactly (shortest round-trippable form). */
std::string formatDouble(double value);

/**
 * Levenshtein edit distance; used for "did you mean" suggestions in
 * semantic errors.
 */
std::size_t editDistance(std::string_view a, std::string_view b);

/**
 * Picks the candidate closest to `name` within a small edit distance,
 * or an empty string if nothing is close enough.
 */
std::string closestMatch(std::string_view name,
                         const std::vector<std::string> &candidates);

} // namespace ark::support

#endif // ARK_SUPPORT_STRINGS_H
