#ifndef ARK_SUPPORT_RNG_H
#define ARK_SUPPORT_RNG_H

/**
 * @file
 * Deterministic random number generation.
 *
 * Ark's mismatch sampling must be bit-reproducible across platforms and
 * standard-library versions (std::normal_distribution is implementation
 * defined), so all randomness flows through this self-contained
 * generator: a splitmix64 core with Box-Muller gaussians.
 */

#include <cstdint>
#include <vector>

namespace ark::support {

/**
 * Deterministic pseudo-random generator (splitmix64 core).
 *
 * Streams seeded with the same value produce identical sequences on any
 * platform. Mismatch sampling in the Ark function executor uses one Rng
 * per invocation, seeded by the caller, matching the paper's
 * "each function invocation sets the random seed" semantics.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit draw. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive); requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal draw (Box-Muller; caches the second deviate). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli draw with probability p of true. */
    bool bernoulli(double p);

    /** Fisher-Yates shuffle of a vector (deterministic given the seed). */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            auto j = static_cast<std::size_t>(
                uniformInt(0, static_cast<std::int64_t>(i) - 1));
            std::swap(items[i - 1], items[j]);
        }
    }

    /**
     * Derives an independent child seed; used to give each sampled
     * attribute its own stream position without correlation.
     */
    std::uint64_t deriveSeed();

  private:
    std::uint64_t state_;
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace ark::support

#endif // ARK_SUPPORT_RNG_H
