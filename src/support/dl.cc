#include "support/dl.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

#include <dlfcn.h>

namespace ark::support {

DynamicLibrary::~DynamicLibrary()
{
    if (handle_ != nullptr)
        dlclose(handle_);
}

DynamicLibrary::DynamicLibrary(DynamicLibrary &&other) noexcept
    : handle_(std::exchange(other.handle_, nullptr)),
      path_(std::move(other.path_))
{
}

DynamicLibrary &
DynamicLibrary::operator=(DynamicLibrary &&other) noexcept
{
    if (this != &other) {
        if (handle_ != nullptr)
            dlclose(handle_);
        handle_ = std::exchange(other.handle_, nullptr);
        path_ = std::move(other.path_);
    }
    return *this;
}

DynamicLibrary
DynamicLibrary::open(const std::string &path, std::string *error)
{
    DynamicLibrary lib;
    // Clear any stale dlerror before the call, per the dlopen contract.
    dlerror();
    lib.handle_ = dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (lib.handle_ == nullptr) {
        if (error != nullptr) {
            const char *msg = dlerror();
            *error = msg != nullptr ? msg : "dlopen failed";
        }
        return lib;
    }
    lib.path_ = path;
    return lib;
}

void *
DynamicLibrary::symbol(const char *name) const
{
    if (handle_ == nullptr)
        return nullptr;
    return dlsym(handle_, name);
}

TempDir::~TempDir()
{
    if (!path_.empty()) {
        std::error_code ec; // best-effort; never throws on teardown
        std::filesystem::remove_all(path_, ec);
    }
}

TempDir::TempDir(TempDir &&other) noexcept
    : path_(std::exchange(other.path_, std::string{}))
{
}

TempDir &
TempDir::operator=(TempDir &&other) noexcept
{
    if (this != &other) {
        if (!path_.empty()) {
            std::error_code ec;
            std::filesystem::remove_all(path_, ec);
        }
        path_ = std::exchange(other.path_, std::string{});
    }
    return *this;
}

TempDir
TempDir::create(const std::string &prefix, std::string *error)
{
    TempDir dir;
    const char *base = std::getenv("TMPDIR");
    std::string pattern = (base != nullptr && base[0] != '\0')
                              ? std::string(base)
                              : std::string("/tmp");
    if (pattern.back() != '/')
        pattern += '/';
    pattern += prefix + "XXXXXX";
    std::vector<char> buf(pattern.begin(), pattern.end());
    buf.push_back('\0');
    if (mkdtemp(buf.data()) == nullptr) {
        if (error != nullptr)
            *error = std::strerror(errno);
        return dir;
    }
    dir.path_ = buf.data();
    return dir;
}

} // namespace ark::support
