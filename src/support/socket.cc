#include "support/socket.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ark::support {

namespace {

bool setNonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0)
    return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string errnoText(const char *what) {
  return std::string(what) + ": " + std::strerror(errno);
}

} // namespace

void OwnedFd::reset(int fd) {
  if (fd_ >= 0)
    ::close(fd_);
  fd_ = fd;
}

bool TcpListener::open(std::uint16_t port, std::string *error) {
  close();
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error)
      *error = errnoText("socket failed");
    return false;
  }
  // Loopback-only by construction: the telemetry plane never binds a
  // routable address. SO_REUSEADDR keeps quick restart cycles from
  // tripping over TIME_WAIT, but a live listener on the port still
  // fails bind() with EADDRINUSE — the structured error callers test.
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr *>(&addr),
             sizeof(addr)) != 0) {
    if (error)
      *error = errnoText("bind failed");
    return false;
  }
  if (::listen(fd.get(), 16) != 0) {
    if (error)
      *error = errnoText("listen failed");
    return false;
  }
  if (!setNonblocking(fd.get())) {
    if (error)
      *error = errnoText("fcntl failed");
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr *>(&bound),
                    &len) != 0) {
    if (error)
      *error = errnoText("getsockname failed");
    return false;
  }
  port_ = ntohs(bound.sin_port);
  fd_ = std::move(fd);
  return true;
}

OwnedFd TcpListener::accept() {
  if (!fd_.valid())
    return OwnedFd();
  int client = ::accept(fd_.get(), nullptr, nullptr);
  if (client < 0)
    return OwnedFd();
  if (!setNonblocking(client)) {
    ::close(client);
    return OwnedFd();
  }
  return OwnedFd(client);
}

void TcpListener::close() {
  fd_.reset();
  port_ = 0;
}

int readAvailable(int fd, std::string *buffer) {
  char chunk[4096];
  ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
  if (n > 0) {
    buffer->append(chunk, static_cast<std::size_t>(n));
    return static_cast<int>(n);
  }
  if (n == 0)
    return 0; // orderly shutdown
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
    return -1;
  return 0; // hard error: treat as closed
}

bool writeAll(int fd, const char *data, std::size_t size) {
  // Responses are small (a metrics page); 2s of total poll budget is
  // generous for loopback and bounds a stuck peer.
  int budgetMs = 2000;
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                  errno == EINTR)) {
      if (budgetMs <= 0)
        return false;
      pollfd pfd{fd, POLLOUT, 0};
      int step = 50;
      ::poll(&pfd, 1, step);
      budgetMs -= step;
      continue;
    }
    return false;
  }
  return true;
}

bool makeWakePipe(OwnedFd *readEnd, OwnedFd *writeEnd) {
  int fds[2];
  if (::pipe(fds) != 0)
    return false;
  if (!setNonblocking(fds[0]) || !setNonblocking(fds[1])) {
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  readEnd->reset(fds[0]);
  writeEnd->reset(fds[1]);
  return true;
}

} // namespace ark::support
