// Per-run flight recorder: a bounded, thread-safe ledger of
// per-instance provenance records.
//
// Every batch engine (ODE ensembles, SPICE sweeps) can be handed a
// RunLedger through its options struct. At the points where the
// engines already flush their aggregate statistics — end of a lane
// block, completion of a sweep instance, a supervisor retry rung —
// they append one Record describing what actually happened to that
// instance: which execution tier ran it, at what lane width and in
// which block, how many steps were accepted and rejected, whether its
// compiled artifacts came out of the cache, which retry-ladder action
// (if any) produced the attempt, and the final structured failure.
//
// The ledger is observation-only. It never steers execution, and a
// run with a ledger attached is bit-identical to one without
// (regression-tested in telemetry_test). The overhead contract
// matches the metrics registry: when no ledger is configured the cost
// at each instrumentation site is a null-pointer check; when one is
// configured the cost is one short critical section per *instance*
// (never per step).
//
// Records are bounded: once `capacity` records have been appended,
// further appends are counted in dropped() and discarded, so a
// runaway million-instance sweep cannot grow memory without bound.
//
// See docs/TELEMETRY.md for the exported JSON schema.

#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ark::telemetry {

class RunLedger {
public:
  // Which engine produced the record.
  enum class Workload : std::uint8_t { Ode, Spice };

  // Execution tier that actually ran the instance. Scalar/Lane/Jit
  // are the ODE ensemble tiers (Jit = a tier-5 native kernel served
  // the RHS, at any lane width); Dense/Sparse are the SPICE solve
  // paths.
  enum class Tier : std::uint8_t { Scalar, Lane, Dense, Sparse, Jit };

  // Whether the instance's compiled artifact (stepper factors, cached
  // system) was served from the ArtifactCache. None = the path does
  // not consult the cache.
  enum class CacheOutcome : std::uint8_t { None, Hit, Miss };

  // Retry-ladder action that produced this attempt (engine::RunPolicy
  // rungs). None for first attempts.
  enum class RetryAction : std::uint8_t {
    None,
    ScalarRetry,
    RelaxedRetry,
    DenseFallback,
  };

  struct Record {
    std::uint64_t runId = 0;       // beginRun() sequence number
    std::size_t index = 0;         // instance position in the batch
    Workload workload = Workload::Ode;
    Tier tier = Tier::Scalar;
    std::size_t laneWidth = 1;     // SoA width paid (1 on scalar paths)
    std::size_t lanes = 1;         // live instances sharing the block
    std::size_t blockId = 0;       // dispatch block / structure group
    int attempt = 1;               // 1-based supervisor attempt
    RetryAction action = RetryAction::None;
    std::size_t stepsAccepted = 0;
    std::size_t stepsRejected = 0;
    CacheOutcome cache = CacheOutcome::None;
    bool ok = true;
    std::string failureReason;     // structured reason name, "" when ok
    std::string failureMessage;    // human-readable detail, may be ""
  };

  static constexpr std::size_t kDefaultCapacity = 65536;

  explicit RunLedger(std::size_t capacity = kDefaultCapacity);

  RunLedger(const RunLedger &) = delete;
  RunLedger &operator=(const RunLedger &) = delete;

  // Marks the start of a batch dispatch and returns its run id.
  // Successive runs recorded into one ledger (e.g. a cold and a warm
  // battery) are distinguished by this id.
  std::uint64_t beginRun(Workload workload, std::size_t instances);

  // Most recent id handed out by beginRun (0 before the first run).
  std::uint64_t lastRunId() const;

  // Appends one record; drops (and counts) it when full. Thread-safe.
  void append(Record record);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::uint64_t dropped() const;

  // Snapshot of the records appended so far.
  std::vector<Record> records() const;

  // Serialises the ledger:
  //   {"runs": N, "dropped": N, "records": [{...}, ...]}
  // Field names and value spellings are documented in
  // docs/TELEMETRY.md and covered by ledger_test.
  std::string json() const;

  void clear();

  // Stable lower-case spellings used by json() — exposed so tools and
  // tests agree on the vocabulary.
  static const char *name(Workload workload);
  static const char *name(Tier tier);
  static const char *name(CacheOutcome outcome);
  static const char *name(RetryAction action);

private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Record> records_;
  std::uint64_t nextRunId_ = 1;
  std::uint64_t runs_ = 0;
  std::uint64_t dropped_ = 0;
};

} // namespace ark::telemetry
