#include "support/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace ark::support {

std::vector<std::string>
split(std::string_view text, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = text.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            break;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string
join(const std::vector<std::string> &pieces, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
        if (i > 0)
            out += sep;
        out += pieces[i];
    }
    return out;
}

std::string
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return std::string(text.substr(begin, end - begin));
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::string
formatDouble(double value)
{
    char buf[64];
    auto result = std::to_chars(buf, buf + sizeof(buf), value);
    return std::string(buf, result.ptr);
}

std::size_t
editDistance(std::string_view a, std::string_view b)
{
    const std::size_t n = a.size();
    const std::size_t m = b.size();
    std::vector<std::size_t> prev(m + 1), curr(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        curr[0] = i;
        for (std::size_t j = 1; j <= m; ++j) {
            std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, sub});
        }
        std::swap(prev, curr);
    }
    return prev[m];
}

std::string
closestMatch(std::string_view name, const std::vector<std::string> &candidates)
{
    std::string best;
    std::size_t best_dist = 3; // anything further is not a useful hint
    for (const auto &cand : candidates) {
        std::size_t d = editDistance(name, cand);
        if (d < best_dist) {
            best_dist = d;
            best = cand;
        }
    }
    return best;
}

} // namespace ark::support
