#include "support/logging.h"

#include <cstdlib>
#include <iostream>

namespace ark::support {

namespace {

LogLevel globalLevel = LogLevel::Normal;

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
inform(const std::string &message)
{
    if (globalLevel >= LogLevel::Normal)
        std::cerr << "info: " << message << "\n";
}

void
warn(const std::string &message)
{
    std::cerr << "warn: " << message << "\n";
}

void
debug(const std::string &message)
{
    if (globalLevel >= LogLevel::Debug)
        std::cerr << "debug: " << message << "\n";
}

void
panic(const std::string &message)
{
    std::cerr << "panic: " << message << "\n";
    std::abort();
}

} // namespace ark::support
