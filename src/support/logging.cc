#include "support/logging.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <mutex>

namespace ark::support {

namespace {

LogLevel globalLevel = LogLevel::Normal;

std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

LogSink &
globalSink()
{
    static LogSink sink;
    return sink;
}

const char *
severityTag(LogSeverity severity)
{
    switch (severity) {
    case LogSeverity::Debug:
        return "debug";
    case LogSeverity::Info:
        return "info";
    case LogSeverity::Warn:
        return "warn";
    case LogSeverity::Panic:
        return "panic";
    }
    return "info";
}

/** "HH:MM:SS.mmm" wall-clock stamp for the current moment. */
std::string
timestamp()
{
    using namespace std::chrono;
    const auto now = system_clock::now();
    const auto ms =
        duration_cast<milliseconds>(now.time_since_epoch()) % 1000;
    const std::time_t t = system_clock::to_time_t(now);
    std::tm tm{};
#if defined(_WIN32)
    localtime_s(&tm, &t);
#else
    localtime_r(&t, &tm);
#endif
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d.%03d", tm.tm_hour,
                  tm.tm_min, tm.tm_sec, static_cast<int>(ms.count()));
    return buf;
}

/**
 * Formats and delivers one complete line under the logging mutex.
 * Building the whole line first and writing it with a single call
 * keeps concurrent workers' messages from interleaving mid-line.
 */
void
emit(LogSeverity severity, const std::string &message)
{
    std::string line = timestamp();
    line += " ";
    line += severityTag(severity);
    line += ": ";
    line += message;

    std::lock_guard<std::mutex> lock(logMutex());
    if (globalSink()) {
        globalSink()(severity, line);
        return;
    }
    line += "\n";
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogSink(LogSink sink)
{
    std::lock_guard<std::mutex> lock(logMutex());
    globalSink() = std::move(sink);
}

void
inform(const std::string &message)
{
    if (globalLevel >= LogLevel::Normal)
        emit(LogSeverity::Info, message);
}

void
warn(const std::string &message)
{
    emit(LogSeverity::Warn, message);
}

void
debug(const std::string &message)
{
    if (globalLevel >= LogLevel::Debug)
        emit(LogSeverity::Debug, message);
}

void
panic(const std::string &message)
{
    emit(LogSeverity::Panic, message);
    std::abort();
}

} // namespace ark::support
