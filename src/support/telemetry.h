#ifndef ARK_SUPPORT_TELEMETRY_H
#define ARK_SUPPORT_TELEMETRY_H

/**
 * @file
 * Engine-wide telemetry: a process-wide metrics registry plus scoped
 * trace spans exportable as Chrome trace-event JSON.
 *
 * The engine computes rich internals on every run — lane occupancy,
 * step-vote rejections, cache hits, LU refactor ratios, retry-ladder
 * actions — and a scheduler (the planned `arkd` coalescing service)
 * needs them as load and health signals. This file makes that
 * accounting a first-class subsystem with two halves:
 *
 *  - **Metrics** (Counter / Gauge / Histogram, owned by Registry):
 *    monotonic counters, last-value gauges, and fixed-bucket
 *    power-of-two histograms, all updated with relaxed atomics.
 *    Instrumented code binds each metric once
 *    (`static Counter &c = Registry::shared().counter("ark.x.y");`)
 *    and then pays one relaxed atomic add per event — or one relaxed
 *    load when collection is off.
 *
 *  - **Trace spans** (ScopedSpan, recorded into per-thread ring
 *    buffers): RAII begin/end intervals attributed to the recording
 *    thread, exported by writeChromeTrace() / TraceSession as Chrome
 *    trace-event JSON that chrome://tracing and Perfetto load
 *    directly ("ph":"X" complete events).
 *
 * Metric names follow the `ark.<area>.<name>` scheme and every
 * instrumentation site costs one relaxed atomic load when collection
 * is off; docs/TELEMETRY.md is the authoritative reference for the
 * naming scheme, the exposition formats served by
 * telemetry::StatsServer, the RunLedger JSON schema, and the full
 * overhead contract. Telemetry never touches numerics: collection on
 * vs. off is bit-identical by construction (regression-tested in
 * telemetry_test).
 */

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ark::telemetry {

namespace detail {
extern std::atomic<bool> metricsOn;
extern std::atomic<bool> tracingOn;

/** Nanoseconds since the process-wide trace epoch (steady clock). */
std::uint64_t nowNs();

/** Appends one finished span to the calling thread's ring buffer. */
void recordSpan(const char *name, std::uint64_t startNs,
                std::uint64_t endNs, std::uint64_t arg, bool hasArg);
} // namespace detail

/** @name Collection switches (both default off). @{ */
inline bool
metricsEnabled()
{
    return detail::metricsOn.load(std::memory_order_relaxed);
}

inline bool
tracingEnabled()
{
    return detail::tracingOn.load(std::memory_order_relaxed);
}

void setMetricsEnabled(bool on);
void setTracingEnabled(bool on);
/** @} */

/**
 * Monotonic counter. add() is one relaxed fetch_add when collection
 * is on, one relaxed load when off. Thread-safe; never negative.
 */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        if (metricsEnabled())
            value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    void reset() { value_.store(0, std::memory_order_relaxed); }

    std::atomic<std::uint64_t> value_{0};
};

/** Last-value gauge (occupancy, configured sizes). */
class Gauge
{
  public:
    void
    set(double v)
    {
        if (metricsEnabled())
            value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram over non-negative integer samples (latency
 * in ns, group sizes). Bucket b counts samples whose bit width is b —
 * i.e. sample v lands in bucket floor(log2(v)) + 1, with v == 0 in
 * bucket 0 — so the bucket boundaries are powers of two and recording
 * is branch-free bookkeeping on relaxed atomics. count/sum are exact;
 * the buckets give the shape.
 */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 64;

    void
    record(std::uint64_t v)
    {
        if (!metricsEnabled())
            return;
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
        buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    }

    static std::size_t
    bucketOf(std::uint64_t v)
    {
        std::size_t b = 0;
        while (v != 0) {
            ++b;
            v >>= 1;
        }
        return b < kBuckets ? b : kBuckets - 1;
    }

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    std::uint64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }
    /** Mean sample, 0 when empty. */
    double mean() const;
    /** Bucket counts (kBuckets entries). */
    std::vector<std::uint64_t> bucketCounts() const;

  private:
    friend class Registry;
    void reset();

    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> buckets_[kBuckets]{};
};

/**
 * Interpolated quantile estimate (q in [0, 1]) from power-of-two
 * bucket counts (Histogram::bucketOf layout). The estimate is exact
 * at bucket boundaries and linearly interpolated within a bucket's
 * [2^(b-1), 2^b - 1] span; 0 when the histogram is empty.
 */
double histogramQuantile(const std::vector<std::uint64_t> &buckets,
                         double q);

/**
 * Point-in-time copy of every registered metric, in registration
 * order. `value` is the counter value, the gauge value, or the
 * histogram count; histograms additionally carry sum/mean/buckets
 * and interpolated p50/p95/p99 estimates.
 */
struct MetricsSnapshot
{
    enum class Kind : std::uint8_t { Counter, Gauge, Histogram };

    struct Entry
    {
        std::string name;
        Kind kind = Kind::Counter;
        double value = 0.0;
        std::uint64_t count = 0; ///< Histogram samples.
        std::uint64_t sum = 0;   ///< Histogram sample sum.
        std::vector<std::uint64_t> buckets; ///< Histogram shape
                                            ///< (trailing zeros trimmed).
        double p50 = 0.0; ///< Histogram quantile estimates
        double p95 = 0.0; ///< (histogramQuantile over `buckets`).
        double p99 = 0.0;
    };

    std::vector<Entry> entries;

    /** Value of a named metric, or `fallback` when absent. */
    double value(std::string_view name, double fallback = 0.0) const;

    /** Human-readable table, one metric per line. */
    std::string str() const;

    /** Flat JSON object: name -> number, histograms -> object. */
    std::string json() const;
};

/**
 * Process-wide metric registry. Registration (counter/gauge/
 * histogram) is mutex-protected and idempotent per name; the returned
 * references are stable for the process lifetime, so hot paths bind
 * them once into function-local statics. A name registered as one
 * kind and requested as another panics — the naming scheme is an API.
 */
class Registry
{
  public:
    static Registry &shared();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Copies every metric (relaxed reads; consistent enough for
     *  reporting, not a linearizable cut). */
    MetricsSnapshot snapshot() const;

    /** Zeroes every metric value; registrations remain. */
    void resetValues();

  private:
    Registry();
    ~Registry();
    struct Impl;
    Impl *impl_;
};

/**
 * RAII trace span. Construction snapshots the clock when tracing is
 * on (and is a single relaxed load when off); destruction appends a
 * complete event to the calling thread's ring buffer. The name must
 * be a string literal (the buffer stores the pointer). An optional
 * integer argument (lane count, batch size) is exported under
 * "args".
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name) : ScopedSpan(name, 0, false) {}

    ScopedSpan(const char *name, std::uint64_t arg)
        : ScopedSpan(name, arg, true)
    {
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Sets/overwrites the exported argument after construction
     *  (e.g. hit/miss known only at the end of the span). */
    void
    setArg(std::uint64_t arg)
    {
        arg_ = arg;
        hasArg_ = true;
    }

    ~ScopedSpan()
    {
        if (name_ != nullptr)
            detail::recordSpan(name_, start_, detail::nowNs(), arg_,
                               hasArg_);
    }

  private:
    ScopedSpan(const char *name, std::uint64_t arg, bool hasArg)
        : name_(tracingEnabled() ? name : nullptr),
          start_(name_ ? detail::nowNs() : 0), arg_(arg), hasArg_(hasArg)
    {
    }

    const char *name_;
    std::uint64_t start_;
    std::uint64_t arg_;
    bool hasArg_;
};

/**
 * RAII histogram timer: records the scope's duration in nanoseconds.
 * Inert (one relaxed load) when collection is off at construction.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &hist)
        : hist_(metricsEnabled() ? &hist : nullptr),
          start_(hist_ ? detail::nowNs() : 0)
    {
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer()
    {
        if (hist_ != nullptr)
            hist_->record(detail::nowNs() - start_);
    }

  private:
    Histogram *hist_;
    std::uint64_t start_;
};

/** Drops every recorded span (buffers stay registered). */
void clearTrace();

/** Spans dropped because a thread's ring buffer filled up. */
std::uint64_t droppedSpans();

/**
 * Writes every recorded span as Chrome trace-event JSON
 * (chrome://tracing, Perfetto): {"traceEvents": [{"ph":"X", ...}]},
 * timestamps in microseconds since the process trace epoch, one tid
 * per recording thread, sorted by start time.
 */
void writeChromeTrace(std::ostream &out);

/**
 * RAII trace recording session: clears the span buffers and enables
 * tracing on construction; on destruction restores the previous
 * tracing state and writes the collected spans to `path` as Chrome
 * trace JSON (a write failure warns and keeps going — tracing must
 * never take down the run it observes).
 */
class TraceSession
{
  public:
    explicit TraceSession(std::string path);
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

  private:
    std::string path_;
    bool previous_;
};

} // namespace ark::telemetry

#endif // ARK_SUPPORT_TELEMETRY_H
