#include "support/error.h"

#include <sstream>

namespace ark::support {

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Lex: return "lex error";
      case ErrorKind::Parse: return "parse error";
      case ErrorKind::Sema: return "semantic error";
      case ErrorKind::Type: return "type error";
      case ErrorKind::Validation: return "validation error";
      case ErrorKind::Compile: return "compile error";
      case ErrorKind::Sim: return "simulation error";
      case ErrorKind::Io: return "io error";
    }
    return "error";
}

std::string
SourceLoc::str() const
{
    if (!valid())
        return "?";
    std::ostringstream oss;
    oss << line << ":" << column;
    return oss.str();
}

namespace {

std::string
formatWhat(ErrorKind kind, const std::string &message, SourceLoc loc)
{
    std::ostringstream oss;
    oss << errorKindName(kind);
    if (loc.valid())
        oss << " at " << loc.str();
    oss << ": " << message;
    return oss.str();
}

} // namespace

ArkError::ArkError(ErrorKind kind, const std::string &message, SourceLoc loc)
    : std::runtime_error(formatWhat(kind, message, loc)),
      kind_(kind), loc_(loc), message_(message)
{
}

} // namespace ark::support
