#ifndef ARK_ILP_ILP_H
#define ARK_ILP_ILP_H

/**
 * @file
 * A small exact 0/1 integer-linear-program solver.
 *
 * The Ark validator (paper Algorithm 2) decides whether a node's
 * edges can be assigned to a pattern's clauses subject to cardinality
 * bounds — a 0/1 feasibility ILP with row-sum and ranged column-sum
 * constraints. This solver is a general 0/1 branch-and-bound with
 * bound propagation; instances are tiny (|edges| x |clauses|
 * variables), so exactness is cheap. flow.h provides an independent
 * max-flow decision procedure for the same assignment structure,
 * used for cross-checking and as a performance ablation.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ark::ilp {

/** A linear constraint: lo <= sum coeff_i * x_i <= hi. */
struct Constraint
{
    std::vector<std::pair<int, double>> terms; ///< (variable, coefficient)
    double lo = 0.0;
    double hi = 0.0;
};

/** A 0/1 ILP: binary variables, ranged linear constraints. */
class Model
{
  public:
    /** Adds a binary variable; returns its index. */
    int addVar();

    /** Adds `count` binary variables; returns the first index. */
    int addVars(int count);

    /** Fixes a variable to a constant (0 or 1). */
    void fixVar(int var, int value);

    /** Adds lo <= expr <= hi. */
    void addConstraint(Constraint c);

    /** Convenience: sum of vars == value. */
    void addSumEquals(const std::vector<int> &vars, double value);

    /** Convenience: lo <= sum of vars <= hi. */
    void addSumRange(const std::vector<int> &vars, double lo, double hi);

    int numVars() const { return numVars_; }
    const std::vector<Constraint> &constraints() const
    {
        return constraints_;
    }
    /** Per-variable domain: {lo, hi} each 0/1. */
    const std::vector<std::pair<int, int>> &bounds() const
    {
        return bounds_;
    }

  private:
    int numVars_ = 0;
    std::vector<Constraint> constraints_;
    std::vector<std::pair<int, int>> bounds_;
};

/** Solver statistics (exposed for the perf ablation bench). */
struct SolveStats
{
    std::uint64_t nodesExplored = 0;
    std::uint64_t propagations = 0;
};

/**
 * Decides feasibility; returns a satisfying assignment or nullopt.
 *
 * Branch-and-bound over binary variables with interval propagation:
 * at each node, every constraint's attainable [min, max] interval is
 * intersected with its bounds; variables whose value is forced get
 * fixed, and emptied intervals prune the subtree.
 */
std::optional<std::vector<int>> solve(const Model &model,
                                      SolveStats *stats = nullptr);

/**
 * Minimizes a linear objective over the model's feasible set.
 * @return assignment minimizing sum obj_i * x_i, or nullopt when
 *         infeasible. `obj` may be shorter than numVars (zero-padded).
 */
std::optional<std::vector<int>> minimize(const Model &model,
                                         const std::vector<double> &obj,
                                         double *objectiveValue = nullptr,
                                         SolveStats *stats = nullptr);

} // namespace ark::ilp

#endif // ARK_ILP_ILP_H
