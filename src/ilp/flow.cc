#include "ilp/flow.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "support/logging.h"

namespace ark::ilp {

using support::panicIf;

MaxFlow::MaxFlow(int numNodes)
    : adj_(static_cast<std::size_t>(numNodes))
{
}

int
MaxFlow::addEdge(int from, int to, std::int64_t capacity)
{
    panicIf(from < 0 || from >= numNodes() || to < 0 || to >= numNodes(),
            "MaxFlow::addEdge: bad endpoint");
    panicIf(capacity < 0, "MaxFlow::addEdge: negative capacity");
    auto f = static_cast<std::size_t>(from);
    auto t = static_cast<std::size_t>(to);
    adj_[f].push_back(Arc{to, capacity, static_cast<int>(adj_[t].size())});
    adj_[t].push_back(Arc{from, 0, static_cast<int>(adj_[f].size()) - 1});
    edgeRef_.emplace_back(from, static_cast<int>(adj_[f].size()) - 1);
    return static_cast<int>(edgeRef_.size()) - 1;
}

bool
MaxFlow::bfs(int source, int sink)
{
    level_.assign(adj_.size(), -1);
    std::queue<int> queue;
    level_[static_cast<std::size_t>(source)] = 0;
    queue.push(source);
    while (!queue.empty()) {
        int node = queue.front();
        queue.pop();
        for (const Arc &arc : adj_[static_cast<std::size_t>(node)]) {
            if (arc.cap > 0 &&
                level_[static_cast<std::size_t>(arc.to)] < 0) {
                level_[static_cast<std::size_t>(arc.to)] =
                    level_[static_cast<std::size_t>(node)] + 1;
                queue.push(arc.to);
            }
        }
    }
    return level_[static_cast<std::size_t>(sink)] >= 0;
}

std::int64_t
MaxFlow::dfs(int node, int sink, std::int64_t limit)
{
    if (node == sink)
        return limit;
    auto n = static_cast<std::size_t>(node);
    for (int &i = iter_[n]; i < static_cast<int>(adj_[n].size()); ++i) {
        Arc &arc = adj_[n][static_cast<std::size_t>(i)];
        if (arc.cap <= 0 ||
            level_[static_cast<std::size_t>(arc.to)] !=
                level_[n] + 1) {
            continue;
        }
        std::int64_t pushed =
            dfs(arc.to, sink, std::min(limit, arc.cap));
        if (pushed > 0) {
            arc.cap -= pushed;
            adj_[static_cast<std::size_t>(arc.to)]
                [static_cast<std::size_t>(arc.rev)].cap += pushed;
            return pushed;
        }
    }
    return 0;
}

std::int64_t
MaxFlow::run(int source, int sink)
{
    std::int64_t total = 0;
    while (bfs(source, sink)) {
        iter_.assign(adj_.size(), 0);
        while (std::int64_t pushed =
                   dfs(source, sink,
                       std::numeric_limits<std::int64_t>::max())) {
            total += pushed;
        }
    }
    return total;
}

std::int64_t
MaxFlow::flowOn(int edgeId) const
{
    const auto &[node, arcIdx] = edgeRef_.at(static_cast<std::size_t>(edgeId));
    const Arc &arc = adj_[static_cast<std::size_t>(node)]
                         [static_cast<std::size_t>(arcIdx)];
    // Flow equals the reverse arc's accumulated capacity.
    return adj_[static_cast<std::size_t>(arc.to)]
               [static_cast<std::size_t>(arc.rev)].cap;
}

std::optional<std::vector<int>>
solveAssignment(const std::vector<std::vector<bool>> &allowed,
                const std::vector<int> &lo, const std::vector<int> &hi)
{
    const int numItems = static_cast<int>(allowed.size());
    const int numBuckets = static_cast<int>(lo.size());
    panicIf(hi.size() != lo.size(), "solveAssignment: lo/hi mismatch");

    // Quick necessary condition: total lower bounds cannot exceed the
    // number of items (each item fills at most one bucket slot).
    std::int64_t loTotal = 0;
    for (int b = 0; b < numBuckets; ++b) {
        int capHi = hi[static_cast<std::size_t>(b)];
        if (capHi >= 0 && lo[static_cast<std::size_t>(b)] > capHi)
            return std::nullopt;
        loTotal += lo[static_cast<std::size_t>(b)];
    }
    if (loTotal > numItems)
        return std::nullopt;

    // Node layout: 0 = source, 1..numItems = items,
    // numItems+1..numItems+numBuckets = buckets, then sink, then the
    // super source/sink of the lower-bound transformation.
    const int source = 0;
    const int firstItem = 1;
    const int firstBucket = firstItem + numItems;
    const int sink = firstBucket + numBuckets;
    const int superSource = sink + 1;
    const int superSink = superSource + 1;
    MaxFlow flow(superSink + 1);

    const std::int64_t infCap = numItems + 1;

    for (int i = 0; i < numItems; ++i)
        flow.addEdge(source, firstItem + i, 1);

    std::vector<std::vector<int>> itemArc(
        static_cast<std::size_t>(numItems),
        std::vector<int>(static_cast<std::size_t>(numBuckets), -1));
    for (int i = 0; i < numItems; ++i) {
        for (int b = 0; b < numBuckets; ++b) {
            if (allowed[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(b)]) {
                itemArc[static_cast<std::size_t>(i)]
                       [static_cast<std::size_t>(b)] =
                    flow.addEdge(firstItem + i, firstBucket + b, 1);
            }
        }
    }

    // Bucket -> sink arcs carry [lo, hi]; lower bounds are rerouted
    // through the super source/sink (standard transformation).
    std::int64_t demand = 0;
    for (int b = 0; b < numBuckets; ++b) {
        std::int64_t lower = lo[static_cast<std::size_t>(b)];
        std::int64_t upper = hi[static_cast<std::size_t>(b)] < 0
                                 ? infCap
                                 : hi[static_cast<std::size_t>(b)];
        flow.addEdge(firstBucket + b, sink, upper - lower);
        if (lower > 0) {
            flow.addEdge(superSource, sink, lower);
            flow.addEdge(firstBucket + b, superSink, lower);
            demand += lower;
        }
    }
    // Close the circulation: sink back to source with infinite cap.
    flow.addEdge(sink, source, infCap);

    if (flow.run(superSource, superSink) != demand)
        return std::nullopt;

    // With lower bounds satisfied, push the remaining items.
    flow.run(source, sink);

    // All items must be assigned.
    std::vector<int> assignment(static_cast<std::size_t>(numItems), -1);
    for (int i = 0; i < numItems; ++i) {
        for (int b = 0; b < numBuckets; ++b) {
            int arc = itemArc[static_cast<std::size_t>(i)]
                             [static_cast<std::size_t>(b)];
            if (arc >= 0 && flow.flowOn(arc) > 0) {
                assignment[static_cast<std::size_t>(i)] = b;
                break;
            }
        }
        if (assignment[static_cast<std::size_t>(i)] < 0)
            return std::nullopt;
    }
    return assignment;
}

} // namespace ark::ilp
