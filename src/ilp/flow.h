#ifndef ARK_ILP_FLOW_H
#define ARK_ILP_FLOW_H

/**
 * @file
 * Dinic max-flow and a lower-bounded assignment decision procedure.
 *
 * The validator's pattern-matching problem — assign each edge of a
 * node to exactly one clause, with clause j receiving between lo_j
 * and hi_j edges — is a bipartite b-matching feasibility question.
 * This module answers it with max-flow over the standard
 * lower-bound transformation, giving an independent exact oracle for
 * cross-checking the ILP and a faster path for large patterns.
 */

#include <cstdint>
#include <optional>
#include <vector>

namespace ark::ilp {

/** Dinic's max-flow on a small directed graph. */
class MaxFlow
{
  public:
    explicit MaxFlow(int numNodes);

    /** Adds a directed edge with the given capacity; returns its id. */
    int addEdge(int from, int to, std::int64_t capacity);

    /** Computes max flow from source to sink. */
    std::int64_t run(int source, int sink);

    /** Flow currently on an edge (after run()). */
    std::int64_t flowOn(int edgeId) const;

    int numNodes() const { return static_cast<int>(adj_.size()); }

  private:
    struct Arc
    {
        int to;
        std::int64_t cap;
        int rev; ///< Index of the reverse arc in adj_[to].
    };

    std::vector<std::vector<Arc>> adj_;
    std::vector<std::pair<int, int>> edgeRef_; ///< (node, arc index)
    std::vector<int> level_;
    std::vector<int> iter_;

    bool bfs(int source, int sink);
    std::int64_t dfs(int node, int sink, std::int64_t limit);
};

/**
 * Decides the validator's assignment problem directly.
 *
 * @param allowed allowed[i][j] is true when item i may go to bucket j.
 * @param lo/hi   Per-bucket cardinality bounds (hi < 0 means inf).
 * @return per-item bucket assignment, or nullopt when infeasible.
 *         Every item must be assigned to exactly one bucket.
 */
std::optional<std::vector<int>> solveAssignment(
    const std::vector<std::vector<bool>> &allowed,
    const std::vector<int> &lo, const std::vector<int> &hi);

} // namespace ark::ilp

#endif // ARK_ILP_FLOW_H
