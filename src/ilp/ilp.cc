#include "ilp/ilp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/logging.h"

namespace ark::ilp {

using support::panicIf;

int
Model::addVar()
{
    bounds_.emplace_back(0, 1);
    return numVars_++;
}

int
Model::addVars(int count)
{
    panicIf(count < 0, "addVars with negative count");
    int first = numVars_;
    for (int i = 0; i < count; ++i)
        addVar();
    return first;
}

void
Model::fixVar(int var, int value)
{
    panicIf(var < 0 || var >= numVars_, "fixVar: bad variable index");
    panicIf(value != 0 && value != 1, "fixVar: binary domain only");
    bounds_[static_cast<std::size_t>(var)] = {value, value};
}

void
Model::addConstraint(Constraint c)
{
    for (const auto &[var, coeff] : c.terms) {
        panicIf(var < 0 || var >= numVars_,
                "constraint references unknown variable");
        (void)coeff;
    }
    constraints_.push_back(std::move(c));
}

void
Model::addSumEquals(const std::vector<int> &vars, double value)
{
    addSumRange(vars, value, value);
}

void
Model::addSumRange(const std::vector<int> &vars, double lo, double hi)
{
    Constraint c;
    c.lo = lo;
    c.hi = hi;
    c.terms.reserve(vars.size());
    for (int var : vars)
        c.terms.emplace_back(var, 1.0);
    addConstraint(std::move(c));
}

namespace {

constexpr double kEps = 1e-9;

/** Mutable search state: per-variable domain [lo, hi] in {0,1}. */
struct SearchState
{
    std::vector<int> lo;
    std::vector<int> hi;

    bool fixed(int var) const { return lo[static_cast<std::size_t>(var)] ==
                                       hi[static_cast<std::size_t>(var)]; }
};

/**
 * Interval propagation: narrows domains until fixpoint.
 * @return false when some constraint becomes unsatisfiable.
 */
bool
propagate(const Model &model, SearchState &state, SolveStats *stats)
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (const Constraint &c : model.constraints()) {
            if (stats)
                ++stats->propagations;
            double minSum = 0.0;
            double maxSum = 0.0;
            for (const auto &[var, coeff] : c.terms) {
                auto v = static_cast<std::size_t>(var);
                if (coeff >= 0) {
                    minSum += coeff * state.lo[v];
                    maxSum += coeff * state.hi[v];
                } else {
                    minSum += coeff * state.hi[v];
                    maxSum += coeff * state.lo[v];
                }
            }
            if (minSum > c.hi + kEps || maxSum < c.lo - kEps)
                return false;
            // Try to force free variables whose value is implied.
            for (const auto &[var, coeff] : c.terms) {
                auto v = static_cast<std::size_t>(var);
                if (state.fixed(var) || coeff == 0.0)
                    continue;
                // Contribution interval of this variable given others.
                double minOthers = minSum -
                    (coeff >= 0 ? coeff * state.lo[v] : coeff * state.hi[v]);
                double maxOthers = maxSum -
                    (coeff >= 0 ? coeff * state.hi[v] : coeff * state.lo[v]);
                // Setting the variable to b adds coeff*b.
                bool canBe0 = (minOthers <= c.hi + kEps) &&
                              (maxOthers >= c.lo - kEps);
                bool canBe1 = (minOthers + coeff <= c.hi + kEps) &&
                              (maxOthers + coeff >= c.lo - kEps);
                if (!canBe0 && !canBe1)
                    return false;
                if (!canBe0) {
                    state.lo[v] = 1;
                    changed = true;
                } else if (!canBe1) {
                    state.hi[v] = 0;
                    changed = true;
                }
            }
            if (changed)
                break; // recompute sums with narrowed domains
        }
    }
    return true;
}

/** Picks the free variable appearing in the most constraints. */
int
pickBranchVar(const Model &model, const SearchState &state)
{
    std::vector<int> score(static_cast<std::size_t>(model.numVars()), 0);
    for (const Constraint &c : model.constraints())
        for (const auto &[var, coeff] : c.terms)
            if (coeff != 0.0)
                ++score[static_cast<std::size_t>(var)];
    int best = -1;
    int bestScore = -1;
    for (int v = 0; v < model.numVars(); ++v) {
        if (!state.fixed(v) && score[static_cast<std::size_t>(v)] >
                                   bestScore) {
            bestScore = score[static_cast<std::size_t>(v)];
            best = v;
        }
    }
    return best;
}

bool
searchFeasible(const Model &model, SearchState &state, SolveStats *stats)
{
    if (stats)
        ++stats->nodesExplored;
    if (!propagate(model, state, stats))
        return false;
    int branch = pickBranchVar(model, state);
    if (branch < 0)
        return true; // every variable fixed and constraints hold
    for (int value : {0, 1}) {
        SearchState child = state;
        child.lo[static_cast<std::size_t>(branch)] = value;
        child.hi[static_cast<std::size_t>(branch)] = value;
        if (searchFeasible(model, child, stats)) {
            state = std::move(child);
            return true;
        }
    }
    return false;
}

double
objectiveLowerBound(const std::vector<double> &obj,
                    const SearchState &state)
{
    double bound = 0.0;
    for (std::size_t v = 0; v < state.lo.size(); ++v) {
        double c = v < obj.size() ? obj[v] : 0.0;
        bound += c * (c >= 0 ? state.lo[v] : state.hi[v]);
    }
    return bound;
}

void
searchMinimize(const Model &model, SearchState &state,
               const std::vector<double> &obj, double &bestValue,
               std::optional<std::vector<int>> &bestAssign,
               SolveStats *stats)
{
    if (stats)
        ++stats->nodesExplored;
    if (!propagate(model, state, stats))
        return;
    if (bestAssign && objectiveLowerBound(obj, state) >= bestValue - kEps)
        return;
    int branch = pickBranchVar(model, state);
    if (branch < 0) {
        double value = objectiveLowerBound(obj, state);
        if (!bestAssign || value < bestValue) {
            bestValue = value;
            bestAssign = state.lo;
        }
        return;
    }
    // Explore the cheaper branch first for better pruning.
    double coeff = static_cast<std::size_t>(branch) < obj.size()
                       ? obj[static_cast<std::size_t>(branch)]
                       : 0.0;
    int first = coeff >= 0 ? 0 : 1;
    for (int value : {first, 1 - first}) {
        SearchState child = state;
        child.lo[static_cast<std::size_t>(branch)] = value;
        child.hi[static_cast<std::size_t>(branch)] = value;
        searchMinimize(model, child, obj, bestValue, bestAssign, stats);
    }
}

SearchState
initialState(const Model &model)
{
    SearchState state;
    state.lo.reserve(static_cast<std::size_t>(model.numVars()));
    state.hi.reserve(static_cast<std::size_t>(model.numVars()));
    for (const auto &[lo, hi] : model.bounds()) {
        state.lo.push_back(lo);
        state.hi.push_back(hi);
    }
    return state;
}

} // namespace

std::optional<std::vector<int>>
solve(const Model &model, SolveStats *stats)
{
    SearchState state = initialState(model);
    if (!searchFeasible(model, state, stats))
        return std::nullopt;
    return state.lo; // all fixed: lo == hi
}

std::optional<std::vector<int>>
minimize(const Model &model, const std::vector<double> &obj,
         double *objectiveValue, SolveStats *stats)
{
    SearchState state = initialState(model);
    double bestValue = std::numeric_limits<double>::infinity();
    std::optional<std::vector<int>> bestAssign;
    searchMinimize(model, state, obj, bestValue, bestAssign, stats);
    if (bestAssign && objectiveValue)
        *objectiveValue = bestValue;
    return bestAssign;
}

} // namespace ark::ilp
