#include "expr/rewrite.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <string>

#include "support/telemetry.h"

namespace ark::expr {

namespace {

bool
numericLiteral(const ExprPtr &e, double *out)
{
    if (e->kind() == ExprKind::Literal && e->literalValue().isNumeric()) {
        *out = e->literalValue().asReal();
        return true;
    }
    return false;
}

bool
bitEq(double x, double y)
{
    return std::bit_cast<std::uint64_t>(x) ==
           std::bit_cast<std::uint64_t>(y);
}

std::uint64_t
nodeCount(const ExprPtr &e)
{
    std::uint64_t n = 0;
    e->visit([&](const Expr &) { ++n; });
    return n;
}

struct Reassociator
{
    RewriteStats stats;

    /**
     * The exact negation of `e`, or null when no exact form exists:
     * literals and leading product coefficients flip sign bits,
     * double negations cancel. Anything that would *add* a rounding
     * (or an instruction) returns null.
     */
    ExprPtr negated(const ExprPtr &e)
    {
        double v;
        if (numericLiteral(e, &v))
            return Expr::real(-v);
        if (e->kind() == ExprKind::Unary && e->unOp() == UnOp::Neg)
            return e->operand();
        if (e->kind() == ExprKind::Binary &&
            e->binOp() == BinOp::Mul && numericLiteral(e->lhs(), &v)) {
            return Expr::binary(BinOp::Mul, Expr::real(-v), e->rhs());
        }
        return nullptr;
    }

    /**
     * Flattens a multiplicative factor into `factors`/`coeff`:
     * nested Muls recurse, numeric literals and Neg signs gather into
     * the coefficient (counted in `gathered`), everything else is an
     * opaque factor whose left-to-right order is preserved.
     */
    void collectFactors(const ExprPtr &e, std::vector<ExprPtr> &factors,
                        double &coeff, int &gathered)
    {
        if (e->kind() == ExprKind::Binary &&
            e->binOp() == BinOp::Mul) {
            collectFactors(e->lhs(), factors, coeff, gathered);
            collectFactors(e->rhs(), factors, coeff, gathered);
            return;
        }
        double v;
        if (numericLiteral(e, &v)) {
            coeff *= v;
            ++gathered;
            return;
        }
        if (e->kind() == ExprKind::Unary && e->unOp() == UnOp::Neg) {
            coeff = -coeff;
            ++gathered;
            collectFactors(e->operand(), factors, coeff, gathered);
            return;
        }
        factors.push_back(e);
    }

    /** Normalized product of two rewritten operands: one leading
     *  literal coefficient, then the opaque factors in order. */
    ExprPtr product(const ExprPtr &a, const ExprPtr &b)
    {
        std::vector<ExprPtr> factors;
        double coeff = 1.0;
        int gathered = 0;
        collectFactors(a, factors, coeff, gathered);
        collectFactors(b, factors, coeff, gathered);
        if (gathered >= 2)
            ++stats.mulConstFolds;
        if (factors.empty())
            return Expr::real(coeff);
        ExprPtr chain = bitEq(coeff, 1.0)
                            ? factors.front()
                            : Expr::binary(BinOp::Mul,
                                           Expr::real(coeff),
                                           factors.front());
        for (std::size_t i = 1; i < factors.size(); ++i)
            chain = Expr::binary(BinOp::Mul, chain, factors[i]);
        return chain;
    }

    ExprPtr run(const ExprPtr &e)
    {
        switch (e->kind()) {
          case ExprKind::Literal:
          case ExprKind::Var:
          case ExprKind::Attr:
          case ExprKind::Time:
          case ExprKind::NodeVar:
          case ExprKind::StateVar:
            return e;
          case ExprKind::Unary: {
            // Boolean subtrees are untouched: a rounding change under
            // a Not could flip the branch it guards.
            if (e->unOp() == UnOp::Not)
                return e;
            ExprPtr a = run(e->operand());
            if (ExprPtr na = negated(a)) {
                ++stats.negFolds;
                return na;
            }
            return Expr::unary(UnOp::Neg, a);
          }
          case ExprKind::Binary: {
            BinOp op = e->binOp();
            // Comparison operands decide branches; And/Or chain
            // comparisons. Rounding must not move there.
            if (isComparison(op) || isLogical(op))
                return e;
            ExprPtr a = run(e->lhs());
            ExprPtr b = run(e->rhs());
            switch (op) {
              case BinOp::Mul:
                return product(a, b);
              case BinOp::Div: {
                double c;
                if (numericLiteral(b, &c) && c != 0.0 &&
                    std::isfinite(c) && std::isfinite(1.0 / c)) {
                    ++stats.divReciprocals;
                    return product(a, Expr::real(1.0 / c));
                }
                return Expr::binary(BinOp::Div, a, b);
              }
              case BinOp::Sub: {
                if (ExprPtr nb = negated(b)) {
                    ++stats.subToAdd;
                    return Expr::binary(BinOp::Add, a, nb);
                }
                return Expr::binary(BinOp::Sub, a, b);
              }
              default:
                // Add keeps its operand order (sums are never
                // reordered); Pow just recurses.
                return Expr::binary(op, a, b);
            }
          }
          case ExprKind::Call: {
            bool changed = false;
            std::vector<ExprPtr> args;
            args.reserve(e->args().size());
            for (const auto &arg : e->args()) {
                ExprPtr na = run(arg);
                changed |= (na != arg);
                args.push_back(na);
            }
            if (!changed)
                return e;
            if (e->calleeExpr())
                return Expr::callExpr(e->calleeExpr(), std::move(args));
            return Expr::call(e->callee(), std::move(args));
          }
          case ExprKind::If: {
            // Condition untouched (branch selection must not move);
            // branches are value positions.
            ExprPtr a = run(e->thenBranch());
            ExprPtr b = run(e->elseBranch());
            if (a == e->thenBranch() && b == e->elseBranch())
                return e;
            return Expr::ifThenElse(e->cond(), a, b);
          }
        }
        return e;
    }
};

} // namespace

ExprPtr
reassociate(const ExprPtr &e, RewriteStats *stats)
{
    Reassociator r;
    r.stats.nodesBefore = nodeCount(e);
    ExprPtr out = r.run(e);
    r.stats.nodesAfter = nodeCount(out);
    if (stats != nullptr) {
        stats->divReciprocals += r.stats.divReciprocals;
        stats->mulConstFolds += r.stats.mulConstFolds;
        stats->negFolds += r.stats.negFolds;
        stats->subToAdd += r.stats.subToAdd;
        stats->nodesBefore += r.stats.nodesBefore;
        stats->nodesAfter += r.stats.nodesAfter;
    }
    return out;
}

std::vector<ExprPtr>
reassociate(const std::vector<ExprPtr> &outputs, RewriteStats *stats)
{
    static telemetry::Counter &opsRemoved =
        telemetry::Registry::shared().counter(
            "ark.compile.rewrite_ops_removed");
    RewriteStats local;
    std::vector<ExprPtr> out;
    out.reserve(outputs.size());
    for (const ExprPtr &e : outputs)
        out.push_back(reassociate(e, &local));
    if (local.nodesAfter < local.nodesBefore)
        opsRemoved.add(local.nodesBefore - local.nodesAfter);
    if (stats != nullptr) {
        stats->divReciprocals += local.divReciprocals;
        stats->mulConstFolds += local.mulConstFolds;
        stats->negFolds += local.negFolds;
        stats->subToAdd += local.subToAdd;
        stats->nodesBefore += local.nodesBefore;
        stats->nodesAfter += local.nodesAfter;
    }
    return out;
}

bool
reassocEnabled(bool optionValue)
{
    // -1 = no override, 0/1 = forced; memoized like jitEnabled — the
    // CI job that forces the pass on sets the variable before launch.
    static const int forced = [] {
        const char *env = std::getenv("ARK_TAPE_REASSOC");
        if (env == nullptr)
            return -1;
        const std::string v(env);
        if (v == "1" || v == "on" || v == "true")
            return 1;
        if (v == "0" || v == "off" || v == "false")
            return 0;
        return -1;
    }();
    if (forced >= 0)
        return forced == 1;
    return optionValue;
}

} // namespace ark::expr
