#include "expr/expr.h"

#include <algorithm>
#include <bit>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "support/error.h"
#include "support/logging.h"
#include "support/strings.h"
#include "support/telemetry.h"

namespace ark::expr {

using support::cat;
using support::panicIf;
using support::TypeError;

const char *
binOpName(BinOp op)
{
    switch (op) {
      case BinOp::Add: return "+";
      case BinOp::Sub: return "-";
      case BinOp::Mul: return "*";
      case BinOp::Div: return "/";
      case BinOp::Pow: return "^";
      case BinOp::Lt: return "<";
      case BinOp::Le: return "<=";
      case BinOp::Gt: return ">";
      case BinOp::Ge: return ">=";
      case BinOp::Eq: return "==";
      case BinOp::Ne: return "!=";
      case BinOp::And: return "and";
      case BinOp::Or: return "or";
    }
    return "?";
}

const char *
unOpName(UnOp op)
{
    switch (op) {
      case UnOp::Neg: return "-";
      case UnOp::Not: return "not";
    }
    return "?";
}

bool
isComparison(BinOp op)
{
    return op >= BinOp::Lt && op <= BinOp::Ne;
}

bool
isLogical(BinOp op)
{
    return op == BinOp::And || op == BinOp::Or;
}

bool
isArithmetic(BinOp op)
{
    return op >= BinOp::Add && op <= BinOp::Pow;
}

namespace {

std::shared_ptr<Expr>
makeNode()
{
    // Expr's constructor is private; this helper is a friend by way of
    // being inside the class's own translation unit using a derived
    // accessor trick kept simple: allocate via new.
    struct Access : Expr {};
    return std::make_shared<Access>();
}

/** splitmix64 finalizer (same diffusion step the engine hasher uses). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Incremental 128-bit digest accumulator for intern keys. Children
 * contribute their memoized digests, so absorbing a node is O(size of
 * its immediate fields), not O(subtree).
 */
struct Digester
{
    std::uint64_t a = 0x9e3779b97f4a7c15ull;
    std::uint64_t b = 0x6a09e667f3bcc909ull;

    void word(std::uint64_t x)
    {
        a = mix64(a ^ x);
        b = mix64(b + std::rotl(x, 29) + 0xff51afd7ed558ccdull);
    }

    void str(const std::string &s)
    {
        word(s.size());
        std::uint64_t w = 0;
        int inWord = 0;
        for (unsigned char c : s) {
            w = (w << 8) | c;
            if (++inWord == 8) {
                word(w);
                w = 0;
                inWord = 0;
            }
        }
        if (inWord > 0)
            word(w);
    }

    void child(const ExprPtr &e)
    {
        word(e->digestHi());
        word(e->digestLo());
    }

    void value(const Value &v)
    {
        word(static_cast<std::uint64_t>(v.kind()));
        switch (v.kind()) {
          case ValueKind::Real:
            // Bit-exact: -0.0 != 0.0, NaN payloads distinguish.
            word(std::bit_cast<std::uint64_t>(v.asReal()));
            break;
          case ValueKind::Int:
            word(static_cast<std::uint64_t>(v.asInt()));
            break;
          case ValueKind::Bool:
            word(v.asBool() ? 1 : 2);
            break;
          case ValueKind::Function: {
            const Lambda &fn = v.asFunction();
            word(fn.params.size());
            for (const std::string &p : fn.params)
                str(p);
            panicIf(!fn.body, "intern: lambda without body");
            child(fn.body);
            break;
          }
        }
    }

    std::pair<std::uint64_t, std::uint64_t> finish() const
    {
        return {mix64(a ^ std::rotl(b, 32)), mix64(b ^ a)};
    }
};

/**
 * Bit-exact literal equality for interning. Value::operator== is the
 * wrong relation here: it treats -0.0 == 0.0 and NaN != NaN, either
 * of which would break the "equal digest ⇒ one pointer" invariant.
 * Lambda bodies are themselves interned, so pointer comparison is
 * exact for them.
 */
bool
literalEq(const Value &x, const Value &y)
{
    if (x.kind() != y.kind())
        return false;
    switch (x.kind()) {
      case ValueKind::Real:
        return std::bit_cast<std::uint64_t>(x.asReal()) ==
               std::bit_cast<std::uint64_t>(y.asReal());
      case ValueKind::Int:
        return x.asInt() == y.asInt();
      case ValueKind::Bool:
        return x.asBool() == y.asBool();
      case ValueKind::Function: {
        const Lambda &fx = x.asFunction();
        const Lambda &fy = y.asFunction();
        return fx.params == fy.params && fx.body == fy.body;
      }
    }
    return false;
}

struct InternKey
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    bool operator==(const InternKey &) const = default;
};

struct InternKeyHash
{
    std::size_t operator()(const InternKey &k) const
    {
        return static_cast<std::size_t>(
            k.hi ^ (k.lo * 0x9e3779b97f4a7c15ull));
    }
};

/**
 * The process-wide intern table. Digest-keyed buckets hold short
 * chains (a chain longer than one means a 128-bit collision — the
 * shallow verification below keeps even that case correct). Entries
 * are strong references; crossing the high-water mark sweeps nodes
 * whose only owner is the table, cascading so dead subtrees drain
 * fully. A single mutex guards everything: interning sits on the
 * compile path, not the integration hot loop.
 */
class InternTable
{
  public:
    static InternTable &instance()
    {
        static InternTable table;
        return table;
    }

    /**
     * `verify(e)` is the shallow structural check against a chain
     * entry; `build(id)` constructs and fully stamps a new node
     * (the build lambdas live inside Expr's factories, which is what
     * grants them access to the private fields).
     */
    template <typename Verify, typename Build>
    ExprPtr intern(std::uint64_t hi, std::uint64_t lo,
                   const Verify &verify, const Build &build)
    {
        static telemetry::Counter &internHits =
            telemetry::Registry::shared().counter(
                "ark.compile.intern_hits");
        static telemetry::Counter &internNodes =
            telemetry::Registry::shared().counter(
                "ark.compile.intern_nodes");

        std::lock_guard<std::mutex> lock(mu_);
        auto [it, inserted] =
            map_.try_emplace(InternKey{hi, lo});
        if (!inserted) {
            for (const ExprPtr &e : it->second) {
                if (verify(*e)) {
                    ++hits_;
                    internHits.add();
                    return e;
                }
            }
        }
        ExprPtr canonical = build(nextId_++);
        it->second.push_back(canonical);
        ++liveEntries_;
        internNodes.add();
        if (liveEntries_ >= purgeThreshold_)
            purgeLocked();
        return canonical;
    }

    InternStats stats()
    {
        std::lock_guard<std::mutex> lock(mu_);
        InternStats out;
        out.liveNodes = liveEntries_;
        out.internedTotal = nextId_ - 1;
        out.hits = hits_;
        out.purged = purged_;
        return out;
    }

    std::size_t purge()
    {
        std::lock_guard<std::mutex> lock(mu_);
        return purgeLocked();
    }

  private:
    /** Sweeps table-only entries to a fixpoint (parents release their
     *  children's table refs as they drop, so one pass isn't enough). */
    std::size_t purgeLocked()
    {
        std::size_t dropped = 0;
        std::size_t droppedThisRound;
        do {
            droppedThisRound = 0;
            for (auto it = map_.begin(); it != map_.end();) {
                auto &chain = it->second;
                std::erase_if(chain, [&](const ExprPtr &e) {
                    if (e.use_count() == 1) {
                        ++droppedThisRound;
                        return true;
                    }
                    return false;
                });
                if (chain.empty())
                    it = map_.erase(it);
                else
                    ++it;
            }
            dropped += droppedThisRound;
        } while (droppedThisRound > 0);
        liveEntries_ -= dropped;
        purged_ += dropped;
        purgeThreshold_ =
            std::max<std::size_t>(kMinPurgeThreshold, liveEntries_ * 2);
        return dropped;
    }

    static constexpr std::size_t kMinPurgeThreshold = 1u << 17;

    std::mutex mu_;
    std::unordered_map<InternKey, std::vector<ExprPtr>, InternKeyHash>
        map_;
    std::uint64_t nextId_ = 1;
    std::uint64_t hits_ = 0;
    std::uint64_t purged_ = 0;
    std::size_t liveEntries_ = 0;
    std::size_t purgeThreshold_ = kMinPurgeThreshold;
};

/** Digest seed per kind; every node digest starts with its kind tag. */
Digester
kindDigester(ExprKind kind)
{
    Digester d;
    d.word(static_cast<std::uint64_t>(kind));
    return d;
}

} // namespace

InternStats
internStats()
{
    return InternTable::instance().stats();
}

std::size_t
internPurge()
{
    return InternTable::instance().purge();
}

ExprPtr
Expr::literal(Value v)
{
    Digester d = kindDigester(ExprKind::Literal);
    d.value(v);
    auto [hi, lo] = d.finish();
    return InternTable::instance().intern(
        hi, lo,
        [&](const Expr &e) {
            return e.kind_ == ExprKind::Literal &&
                   literalEq(e.value_, v);
        },
        [&](std::uint64_t id) {
            auto n = makeNode();
            n->kind_ = ExprKind::Literal;
            n->value_ = std::move(v);
            stamp(*n, id, hi, lo);
            return n;
        });
}

ExprPtr
Expr::real(double v)
{
    return literal(Value::real(v));
}

ExprPtr
Expr::integer(std::int64_t v)
{
    return literal(Value::integer(v));
}

ExprPtr
Expr::boolean(bool v)
{
    return literal(Value::boolean(v));
}

ExprPtr
Expr::var(std::string name)
{
    Digester d = kindDigester(ExprKind::Var);
    d.str(name);
    auto [hi, lo] = d.finish();
    return InternTable::instance().intern(
        hi, lo,
        [&](const Expr &e) {
            return e.kind_ == ExprKind::Var && e.name_ == name;
        },
        [&](std::uint64_t id) {
            auto n = makeNode();
            n->kind_ = ExprKind::Var;
            n->name_ = std::move(name);
            stamp(*n, id, hi, lo);
            return n;
        });
}

ExprPtr
Expr::attr(std::string base, std::string name)
{
    Digester d = kindDigester(ExprKind::Attr);
    d.str(base);
    d.str(name);
    auto [hi, lo] = d.finish();
    return InternTable::instance().intern(
        hi, lo,
        [&](const Expr &e) {
            return e.kind_ == ExprKind::Attr && e.name_ == base &&
                   e.attr_ == name;
        },
        [&](std::uint64_t id) {
            auto n = makeNode();
            n->kind_ = ExprKind::Attr;
            n->name_ = std::move(base);
            n->attr_ = std::move(name);
            stamp(*n, id, hi, lo);
            return n;
        });
}

ExprPtr
Expr::time()
{
    auto [hi, lo] = kindDigester(ExprKind::Time).finish();
    return InternTable::instance().intern(
        hi, lo,
        [&](const Expr &e) { return e.kind_ == ExprKind::Time; },
        [&](std::uint64_t id) {
            auto n = makeNode();
            n->kind_ = ExprKind::Time;
            stamp(*n, id, hi, lo);
            return n;
        });
}

ExprPtr
Expr::unary(UnOp op, ExprPtr operand)
{
    panicIf(!operand, "unary with null operand");
    Digester d = kindDigester(ExprKind::Unary);
    d.word(static_cast<std::uint64_t>(op));
    d.child(operand);
    auto [hi, lo] = d.finish();
    return InternTable::instance().intern(
        hi, lo,
        [&](const Expr &e) {
            return e.kind_ == ExprKind::Unary && e.unOp_ == op &&
                   e.a_ == operand;
        },
        [&](std::uint64_t id) {
            auto n = makeNode();
            n->kind_ = ExprKind::Unary;
            n->unOp_ = op;
            n->a_ = std::move(operand);
            stamp(*n, id, hi, lo);
            return n;
        });
}

ExprPtr
Expr::binary(BinOp op, ExprPtr lhs, ExprPtr rhs)
{
    panicIf(!lhs || !rhs, "binary with null operand");
    Digester d = kindDigester(ExprKind::Binary);
    d.word(static_cast<std::uint64_t>(op));
    d.child(lhs);
    d.child(rhs);
    auto [hi, lo] = d.finish();
    return InternTable::instance().intern(
        hi, lo,
        [&](const Expr &e) {
            return e.kind_ == ExprKind::Binary && e.binOp_ == op &&
                   e.a_ == lhs && e.b_ == rhs;
        },
        [&](std::uint64_t id) {
            auto n = makeNode();
            n->kind_ = ExprKind::Binary;
            n->binOp_ = op;
            n->a_ = std::move(lhs);
            n->b_ = std::move(rhs);
            stamp(*n, id, hi, lo);
            return n;
        });
}

namespace {

/** Shared shallow check for the two Call factory forms. */
bool
callMatches(const Expr &e, const std::string &name,
            const ExprPtr &calleeExpr, const std::vector<ExprPtr> &args)
{
    if (e.kind() != ExprKind::Call || e.callee() != name ||
        e.calleeExpr() != calleeExpr ||
        e.args().size() != args.size()) {
        return false;
    }
    for (std::size_t i = 0; i < args.size(); ++i)
        if (e.args()[i] != args[i])
            return false;
    return true;
}

} // namespace

ExprPtr
Expr::internCall(std::string name, ExprPtr calleeExpr,
                 std::vector<ExprPtr> args)
{
    Digester d = kindDigester(ExprKind::Call);
    d.str(name);
    if (calleeExpr) {
        d.word(1);
        d.child(calleeExpr);
    } else {
        d.word(0);
    }
    d.word(args.size());
    for (const ExprPtr &a : args)
        d.child(a);
    auto [hi, lo] = d.finish();
    return InternTable::instance().intern(
        hi, lo,
        [&](const Expr &e) {
            return callMatches(e, name, calleeExpr, args);
        },
        [&](std::uint64_t id) {
            auto n = makeNode();
            n->kind_ = ExprKind::Call;
            n->name_ = std::move(name);
            n->calleeExpr_ = std::move(calleeExpr);
            n->args_ = std::move(args);
            stamp(*n, id, hi, lo);
            return n;
        });
}

ExprPtr
Expr::call(std::string callee, std::vector<ExprPtr> args)
{
    for (const auto &a : args)
        panicIf(!a, "call with null argument");
    return internCall(std::move(callee), nullptr, std::move(args));
}

ExprPtr
Expr::callExpr(ExprPtr callee, std::vector<ExprPtr> args)
{
    panicIf(!callee, "callExpr with null callee");
    for (const auto &a : args)
        panicIf(!a, "callExpr with null argument");
    return internCall(std::string(), std::move(callee), std::move(args));
}

ExprPtr
Expr::ifThenElse(ExprPtr cond, ExprPtr then, ExprPtr other)
{
    panicIf(!cond || !then || !other, "if with null operand");
    Digester d = kindDigester(ExprKind::If);
    d.child(cond);
    d.child(then);
    d.child(other);
    auto [hi, lo] = d.finish();
    return InternTable::instance().intern(
        hi, lo,
        [&](const Expr &e) {
            return e.kind_ == ExprKind::If && e.c_ == cond &&
                   e.a_ == then && e.b_ == other;
        },
        [&](std::uint64_t id) {
            auto n = makeNode();
            n->kind_ = ExprKind::If;
            n->c_ = std::move(cond);
            n->a_ = std::move(then);
            n->b_ = std::move(other);
            stamp(*n, id, hi, lo);
            return n;
        });
}

ExprPtr
Expr::nodeVar(std::string node)
{
    Digester d = kindDigester(ExprKind::NodeVar);
    d.str(node);
    auto [hi, lo] = d.finish();
    return InternTable::instance().intern(
        hi, lo,
        [&](const Expr &e) {
            return e.kind_ == ExprKind::NodeVar && e.name_ == node;
        },
        [&](std::uint64_t id) {
            auto n = makeNode();
            n->kind_ = ExprKind::NodeVar;
            n->name_ = std::move(node);
            stamp(*n, id, hi, lo);
            return n;
        });
}

ExprPtr
Expr::stateVar(int index)
{
    panicIf(index < 0, "stateVar with negative index");
    Digester d = kindDigester(ExprKind::StateVar);
    d.word(static_cast<std::uint64_t>(index));
    auto [hi, lo] = d.finish();
    return InternTable::instance().intern(
        hi, lo,
        [&](const Expr &e) {
            return e.kind_ == ExprKind::StateVar &&
                   e.stateIndex_ == index;
        },
        [&](std::uint64_t id) {
            auto n = makeNode();
            n->kind_ = ExprKind::StateVar;
            n->stateIndex_ = index;
            stamp(*n, id, hi, lo);
            return n;
        });
}

const Value &
Expr::literalValue() const
{
    panicIf(kind_ != ExprKind::Literal, "literalValue on non-literal");
    return value_;
}

const std::string &
Expr::varName() const
{
    panicIf(kind_ != ExprKind::Var, "varName on non-var");
    return name_;
}

const std::string &
Expr::attrBase() const
{
    panicIf(kind_ != ExprKind::Attr, "attrBase on non-attr");
    return name_;
}

const std::string &
Expr::attrName() const
{
    panicIf(kind_ != ExprKind::Attr, "attrName on non-attr");
    return attr_;
}

UnOp
Expr::unOp() const
{
    panicIf(kind_ != ExprKind::Unary, "unOp on non-unary");
    return unOp_;
}

BinOp
Expr::binOp() const
{
    panicIf(kind_ != ExprKind::Binary, "binOp on non-binary");
    return binOp_;
}

const ExprPtr &
Expr::lhs() const
{
    panicIf(kind_ != ExprKind::Binary, "lhs on non-binary");
    return a_;
}

const ExprPtr &
Expr::rhs() const
{
    panicIf(kind_ != ExprKind::Binary, "rhs on non-binary");
    return b_;
}

const ExprPtr &
Expr::operand() const
{
    panicIf(kind_ != ExprKind::Unary, "operand on non-unary");
    return a_;
}

const std::string &
Expr::callee() const
{
    panicIf(kind_ != ExprKind::Call, "callee on non-call");
    return name_;
}

const ExprPtr &
Expr::calleeExpr() const
{
    panicIf(kind_ != ExprKind::Call, "calleeExpr on non-call");
    return calleeExpr_;
}

const std::vector<ExprPtr> &
Expr::args() const
{
    panicIf(kind_ != ExprKind::Call, "args on non-call");
    return args_;
}

const ExprPtr &
Expr::cond() const
{
    panicIf(kind_ != ExprKind::If, "cond on non-if");
    return c_;
}

const ExprPtr &
Expr::thenBranch() const
{
    panicIf(kind_ != ExprKind::If, "thenBranch on non-if");
    return a_;
}

const ExprPtr &
Expr::elseBranch() const
{
    panicIf(kind_ != ExprKind::If, "elseBranch on non-if");
    return b_;
}

const std::string &
Expr::nodeName() const
{
    panicIf(kind_ != ExprKind::NodeVar, "nodeName on non-nodevar");
    return name_;
}

int
Expr::stateIndex() const
{
    panicIf(kind_ != ExprKind::StateVar, "stateIndex on non-statevar");
    return stateIndex_;
}

std::string
Expr::str() const
{
    switch (kind_) {
      case ExprKind::Literal:
        return value_.str();
      case ExprKind::Var:
        return name_;
      case ExprKind::Attr:
        return name_ + "." + attr_;
      case ExprKind::Time:
        return "time";
      case ExprKind::Unary:
        if (unOp_ == UnOp::Not)
            return cat("(not ", a_->str(), ")");
        return cat("(-", a_->str(), ")");
      case ExprKind::Binary:
        return cat("(", a_->str(), " ", binOpName(binOp_), " ",
                   b_->str(), ")");
      case ExprKind::Call: {
        std::string out =
            calleeExpr_ ? cat("(", calleeExpr_->str(), ")") : name_;
        out += "(";
        for (std::size_t i = 0; i < args_.size(); ++i) {
            if (i > 0)
                out += ",";
            out += args_[i]->str();
        }
        out += ")";
        return out;
      }
      case ExprKind::If:
        return cat("(if ", c_->str(), " then ", a_->str(), " else ",
                   b_->str(), ")");
      case ExprKind::NodeVar:
        return cat("var(", name_, ")");
      case ExprKind::StateVar:
        return cat("q[", stateIndex_, "]");
    }
    return "<?>";
}

bool
Expr::equals(const Expr &other) const
{
    // Interned: live structurally-equal nodes are one pointer. The
    // deep walk below (bit-exact literals, matching the intern
    // relation) is kept as a fallback so the predicate stays total
    // and self-evident.
    if (this == &other)
        return true;
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case ExprKind::Literal:
        return literalEq(value_, other.value_);
      case ExprKind::Var:
      case ExprKind::NodeVar:
        return name_ == other.name_;
      case ExprKind::Attr:
        return name_ == other.name_ && attr_ == other.attr_;
      case ExprKind::Time:
        return true;
      case ExprKind::Unary:
        return unOp_ == other.unOp_ && a_->equals(*other.a_);
      case ExprKind::Binary:
        return binOp_ == other.binOp_ && a_->equals(*other.a_) &&
               b_->equals(*other.b_);
      case ExprKind::Call: {
        if (name_ != other.name_ || args_.size() != other.args_.size())
            return false;
        if (static_cast<bool>(calleeExpr_) !=
            static_cast<bool>(other.calleeExpr_)) {
            return false;
        }
        if (calleeExpr_ && !calleeExpr_->equals(*other.calleeExpr_))
            return false;
        for (std::size_t i = 0; i < args_.size(); ++i)
            if (!args_[i]->equals(*other.args_[i]))
                return false;
        return true;
      }
      case ExprKind::If:
        return c_->equals(*other.c_) && a_->equals(*other.a_) &&
               b_->equals(*other.b_);
      case ExprKind::StateVar:
        return stateIndex_ == other.stateIndex_;
    }
    return false;
}

void
Expr::visit(const std::function<void(const Expr &)> &fn) const
{
    fn(*this);
    if (a_)
        a_->visit(fn);
    if (b_)
        b_->visit(fn);
    if (c_)
        c_->visit(fn);
    if (calleeExpr_)
        calleeExpr_->visit(fn);
    for (const auto &arg : args_)
        arg->visit(fn);
}

std::vector<std::string>
Expr::freeVars() const
{
    std::vector<std::string> out;
    std::unordered_set<std::string> seen;
    visit([&](const Expr &e) {
        if (e.kind() == ExprKind::Var && seen.insert(e.varName()).second)
            out.push_back(e.varName());
    });
    return out;
}

std::vector<std::string>
Expr::nodeVars() const
{
    std::vector<std::string> out;
    std::unordered_set<std::string> seen;
    visit([&](const Expr &e) {
        if (e.kind() == ExprKind::NodeVar &&
            seen.insert(e.nodeName()).second) {
            out.push_back(e.nodeName());
        }
    });
    return out;
}

namespace {

/**
 * Generic bottom-up rewriter: `leaf` maps an expression node to its
 * replacement (or nullptr to keep it); children are rewritten first.
 */
ExprPtr
rewrite(const ExprPtr &e,
        const std::function<ExprPtr(const ExprPtr &)> &leaf)
{
    switch (e->kind()) {
      case ExprKind::Literal:
      case ExprKind::Time:
      case ExprKind::StateVar:
        return e;
      case ExprKind::Var:
      case ExprKind::Attr:
      case ExprKind::NodeVar: {
        ExprPtr repl = leaf(e);
        return repl ? repl : e;
      }
      case ExprKind::Unary: {
        ExprPtr a = rewrite(e->operand(), leaf);
        if (a == e->operand())
            return e;
        return Expr::unary(e->unOp(), a);
      }
      case ExprKind::Binary: {
        ExprPtr a = rewrite(e->lhs(), leaf);
        ExprPtr b = rewrite(e->rhs(), leaf);
        if (a == e->lhs() && b == e->rhs())
            return e;
        return Expr::binary(e->binOp(), a, b);
      }
      case ExprKind::Call: {
        bool changed = false;
        ExprPtr callee = e->calleeExpr();
        if (callee) {
            ExprPtr nc = rewrite(callee, leaf);
            changed |= (nc != callee);
            callee = nc;
        }
        std::vector<ExprPtr> args;
        args.reserve(e->args().size());
        for (const auto &arg : e->args()) {
            ExprPtr na = rewrite(arg, leaf);
            changed |= (na != arg);
            args.push_back(na);
        }
        if (!changed)
            return e;
        if (callee)
            return Expr::callExpr(callee, std::move(args));
        return Expr::call(e->callee(), std::move(args));
      }
      case ExprKind::If: {
        ExprPtr c = rewrite(e->cond(), leaf);
        ExprPtr a = rewrite(e->thenBranch(), leaf);
        ExprPtr b = rewrite(e->elseBranch(), leaf);
        if (c == e->cond() && a == e->thenBranch() &&
            b == e->elseBranch()) {
            return e;
        }
        return Expr::ifThenElse(c, a, b);
      }
    }
    return e;
}

} // namespace

ExprPtr
substituteVars(const ExprPtr &e,
               const std::function<ExprPtr(const std::string &)> &lookup)
{
    return rewrite(e, [&](const ExprPtr &leaf) -> ExprPtr {
        if (leaf->kind() == ExprKind::Var)
            return lookup(leaf->varName());
        return nullptr;
    });
}

ExprPtr
substituteNodeVars(const ExprPtr &e,
                   const std::function<ExprPtr(const std::string &)> &lookup)
{
    return rewrite(e, [&](const ExprPtr &leaf) -> ExprPtr {
        if (leaf->kind() == ExprKind::NodeVar)
            return lookup(leaf->nodeName());
        return nullptr;
    });
}

ExprPtr
substituteAttrs(
    const ExprPtr &e,
    const std::function<ExprPtr(const std::string &, const std::string &)>
        &lookup)
{
    return rewrite(e, [&](const ExprPtr &leaf) -> ExprPtr {
        if (leaf->kind() == ExprKind::Attr)
            return lookup(leaf->attrBase(), leaf->attrName());
        return nullptr;
    });
}

ExprPtr
renameBindings(const ExprPtr &e,
               const std::function<std::string(const std::string &)> &rename)
{
    return rewrite(e, [&](const ExprPtr &leaf) -> ExprPtr {
        switch (leaf->kind()) {
          case ExprKind::Var: {
            std::string renamed = rename(leaf->varName());
            if (renamed == leaf->varName())
                return nullptr;
            return Expr::var(renamed);
          }
          case ExprKind::Attr: {
            std::string renamed = rename(leaf->attrBase());
            if (renamed == leaf->attrBase())
                return nullptr;
            return Expr::attr(renamed, leaf->attrName());
          }
          case ExprKind::NodeVar: {
            std::string renamed = rename(leaf->nodeName());
            if (renamed == leaf->nodeName())
                return nullptr;
            return Expr::nodeVar(renamed);
          }
          default:
            return nullptr;
        }
    });
}

ExprPtr
applyLambda(const Lambda &lambda, const std::vector<ExprPtr> &args)
{
    if (lambda.params.size() != args.size()) {
        throw TypeError(cat("lambda expects ", lambda.params.size(),
                            " argument(s), got ", args.size()));
    }
    std::unordered_map<std::string, ExprPtr> binding;
    for (std::size_t i = 0; i < args.size(); ++i)
        binding[lambda.params[i]] = args[i];
    return substituteVars(lambda.body,
                          [&](const std::string &name) -> ExprPtr {
                              auto it = binding.find(name);
                              return it == binding.end() ? nullptr
                                                         : it->second;
                          });
}

} // namespace ark::expr
