#include "expr/expr.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "support/error.h"
#include "support/logging.h"
#include "support/strings.h"

namespace ark::expr {

using support::cat;
using support::panicIf;
using support::TypeError;

const char *
binOpName(BinOp op)
{
    switch (op) {
      case BinOp::Add: return "+";
      case BinOp::Sub: return "-";
      case BinOp::Mul: return "*";
      case BinOp::Div: return "/";
      case BinOp::Pow: return "^";
      case BinOp::Lt: return "<";
      case BinOp::Le: return "<=";
      case BinOp::Gt: return ">";
      case BinOp::Ge: return ">=";
      case BinOp::Eq: return "==";
      case BinOp::Ne: return "!=";
      case BinOp::And: return "and";
      case BinOp::Or: return "or";
    }
    return "?";
}

const char *
unOpName(UnOp op)
{
    switch (op) {
      case UnOp::Neg: return "-";
      case UnOp::Not: return "not";
    }
    return "?";
}

bool
isComparison(BinOp op)
{
    return op >= BinOp::Lt && op <= BinOp::Ne;
}

bool
isLogical(BinOp op)
{
    return op == BinOp::And || op == BinOp::Or;
}

bool
isArithmetic(BinOp op)
{
    return op >= BinOp::Add && op <= BinOp::Pow;
}

namespace {

std::shared_ptr<Expr>
makeNode()
{
    // Expr's constructor is private; this helper is a friend by way of
    // being inside the class's own translation unit using a derived
    // accessor trick kept simple: allocate via new.
    struct Access : Expr {};
    return std::make_shared<Access>();
}

} // namespace

ExprPtr
Expr::literal(Value v)
{
    auto n = makeNode();
    n->kind_ = ExprKind::Literal;
    n->value_ = std::move(v);
    return n;
}

ExprPtr
Expr::real(double v)
{
    return literal(Value::real(v));
}

ExprPtr
Expr::integer(std::int64_t v)
{
    return literal(Value::integer(v));
}

ExprPtr
Expr::boolean(bool v)
{
    return literal(Value::boolean(v));
}

ExprPtr
Expr::var(std::string name)
{
    auto n = makeNode();
    n->kind_ = ExprKind::Var;
    n->name_ = std::move(name);
    return n;
}

ExprPtr
Expr::attr(std::string base, std::string name)
{
    auto n = makeNode();
    n->kind_ = ExprKind::Attr;
    n->name_ = std::move(base);
    n->attr_ = std::move(name);
    return n;
}

ExprPtr
Expr::time()
{
    auto n = makeNode();
    n->kind_ = ExprKind::Time;
    return n;
}

ExprPtr
Expr::unary(UnOp op, ExprPtr operand)
{
    panicIf(!operand, "unary with null operand");
    auto n = makeNode();
    n->kind_ = ExprKind::Unary;
    n->unOp_ = op;
    n->a_ = std::move(operand);
    return n;
}

ExprPtr
Expr::binary(BinOp op, ExprPtr lhs, ExprPtr rhs)
{
    panicIf(!lhs || !rhs, "binary with null operand");
    auto n = makeNode();
    n->kind_ = ExprKind::Binary;
    n->binOp_ = op;
    n->a_ = std::move(lhs);
    n->b_ = std::move(rhs);
    return n;
}

ExprPtr
Expr::call(std::string callee, std::vector<ExprPtr> args)
{
    for (const auto &a : args)
        panicIf(!a, "call with null argument");
    auto n = makeNode();
    n->kind_ = ExprKind::Call;
    n->name_ = std::move(callee);
    n->args_ = std::move(args);
    return n;
}

ExprPtr
Expr::callExpr(ExprPtr callee, std::vector<ExprPtr> args)
{
    panicIf(!callee, "callExpr with null callee");
    for (const auto &a : args)
        panicIf(!a, "callExpr with null argument");
    auto n = makeNode();
    n->kind_ = ExprKind::Call;
    n->calleeExpr_ = std::move(callee);
    n->args_ = std::move(args);
    return n;
}

ExprPtr
Expr::ifThenElse(ExprPtr cond, ExprPtr then, ExprPtr other)
{
    panicIf(!cond || !then || !other, "if with null operand");
    auto n = makeNode();
    n->kind_ = ExprKind::If;
    n->c_ = std::move(cond);
    n->a_ = std::move(then);
    n->b_ = std::move(other);
    return n;
}

ExprPtr
Expr::nodeVar(std::string node)
{
    auto n = makeNode();
    n->kind_ = ExprKind::NodeVar;
    n->name_ = std::move(node);
    return n;
}

ExprPtr
Expr::stateVar(int index)
{
    panicIf(index < 0, "stateVar with negative index");
    auto n = makeNode();
    n->kind_ = ExprKind::StateVar;
    n->stateIndex_ = index;
    return n;
}

const Value &
Expr::literalValue() const
{
    panicIf(kind_ != ExprKind::Literal, "literalValue on non-literal");
    return value_;
}

const std::string &
Expr::varName() const
{
    panicIf(kind_ != ExprKind::Var, "varName on non-var");
    return name_;
}

const std::string &
Expr::attrBase() const
{
    panicIf(kind_ != ExprKind::Attr, "attrBase on non-attr");
    return name_;
}

const std::string &
Expr::attrName() const
{
    panicIf(kind_ != ExprKind::Attr, "attrName on non-attr");
    return attr_;
}

UnOp
Expr::unOp() const
{
    panicIf(kind_ != ExprKind::Unary, "unOp on non-unary");
    return unOp_;
}

BinOp
Expr::binOp() const
{
    panicIf(kind_ != ExprKind::Binary, "binOp on non-binary");
    return binOp_;
}

const ExprPtr &
Expr::lhs() const
{
    panicIf(kind_ != ExprKind::Binary, "lhs on non-binary");
    return a_;
}

const ExprPtr &
Expr::rhs() const
{
    panicIf(kind_ != ExprKind::Binary, "rhs on non-binary");
    return b_;
}

const ExprPtr &
Expr::operand() const
{
    panicIf(kind_ != ExprKind::Unary, "operand on non-unary");
    return a_;
}

const std::string &
Expr::callee() const
{
    panicIf(kind_ != ExprKind::Call, "callee on non-call");
    return name_;
}

const ExprPtr &
Expr::calleeExpr() const
{
    panicIf(kind_ != ExprKind::Call, "calleeExpr on non-call");
    return calleeExpr_;
}

const std::vector<ExprPtr> &
Expr::args() const
{
    panicIf(kind_ != ExprKind::Call, "args on non-call");
    return args_;
}

const ExprPtr &
Expr::cond() const
{
    panicIf(kind_ != ExprKind::If, "cond on non-if");
    return c_;
}

const ExprPtr &
Expr::thenBranch() const
{
    panicIf(kind_ != ExprKind::If, "thenBranch on non-if");
    return a_;
}

const ExprPtr &
Expr::elseBranch() const
{
    panicIf(kind_ != ExprKind::If, "elseBranch on non-if");
    return b_;
}

const std::string &
Expr::nodeName() const
{
    panicIf(kind_ != ExprKind::NodeVar, "nodeName on non-nodevar");
    return name_;
}

int
Expr::stateIndex() const
{
    panicIf(kind_ != ExprKind::StateVar, "stateIndex on non-statevar");
    return stateIndex_;
}

std::string
Expr::str() const
{
    switch (kind_) {
      case ExprKind::Literal:
        return value_.str();
      case ExprKind::Var:
        return name_;
      case ExprKind::Attr:
        return name_ + "." + attr_;
      case ExprKind::Time:
        return "time";
      case ExprKind::Unary:
        if (unOp_ == UnOp::Not)
            return cat("(not ", a_->str(), ")");
        return cat("(-", a_->str(), ")");
      case ExprKind::Binary:
        return cat("(", a_->str(), " ", binOpName(binOp_), " ",
                   b_->str(), ")");
      case ExprKind::Call: {
        std::string out =
            calleeExpr_ ? cat("(", calleeExpr_->str(), ")") : name_;
        out += "(";
        for (std::size_t i = 0; i < args_.size(); ++i) {
            if (i > 0)
                out += ",";
            out += args_[i]->str();
        }
        out += ")";
        return out;
      }
      case ExprKind::If:
        return cat("(if ", c_->str(), " then ", a_->str(), " else ",
                   b_->str(), ")");
      case ExprKind::NodeVar:
        return cat("var(", name_, ")");
      case ExprKind::StateVar:
        return cat("q[", stateIndex_, "]");
    }
    return "<?>";
}

bool
Expr::equals(const Expr &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case ExprKind::Literal:
        return value_ == other.value_;
      case ExprKind::Var:
      case ExprKind::NodeVar:
        return name_ == other.name_;
      case ExprKind::Attr:
        return name_ == other.name_ && attr_ == other.attr_;
      case ExprKind::Time:
        return true;
      case ExprKind::Unary:
        return unOp_ == other.unOp_ && a_->equals(*other.a_);
      case ExprKind::Binary:
        return binOp_ == other.binOp_ && a_->equals(*other.a_) &&
               b_->equals(*other.b_);
      case ExprKind::Call: {
        if (name_ != other.name_ || args_.size() != other.args_.size())
            return false;
        if (static_cast<bool>(calleeExpr_) !=
            static_cast<bool>(other.calleeExpr_)) {
            return false;
        }
        if (calleeExpr_ && !calleeExpr_->equals(*other.calleeExpr_))
            return false;
        for (std::size_t i = 0; i < args_.size(); ++i)
            if (!args_[i]->equals(*other.args_[i]))
                return false;
        return true;
      }
      case ExprKind::If:
        return c_->equals(*other.c_) && a_->equals(*other.a_) &&
               b_->equals(*other.b_);
      case ExprKind::StateVar:
        return stateIndex_ == other.stateIndex_;
    }
    return false;
}

void
Expr::visit(const std::function<void(const Expr &)> &fn) const
{
    fn(*this);
    if (a_)
        a_->visit(fn);
    if (b_)
        b_->visit(fn);
    if (c_)
        c_->visit(fn);
    if (calleeExpr_)
        calleeExpr_->visit(fn);
    for (const auto &arg : args_)
        arg->visit(fn);
}

std::vector<std::string>
Expr::freeVars() const
{
    std::vector<std::string> out;
    std::unordered_set<std::string> seen;
    visit([&](const Expr &e) {
        if (e.kind() == ExprKind::Var && seen.insert(e.varName()).second)
            out.push_back(e.varName());
    });
    return out;
}

std::vector<std::string>
Expr::nodeVars() const
{
    std::vector<std::string> out;
    std::unordered_set<std::string> seen;
    visit([&](const Expr &e) {
        if (e.kind() == ExprKind::NodeVar &&
            seen.insert(e.nodeName()).second) {
            out.push_back(e.nodeName());
        }
    });
    return out;
}

namespace {

/**
 * Generic bottom-up rewriter: `leaf` maps an expression node to its
 * replacement (or nullptr to keep it); children are rewritten first.
 */
ExprPtr
rewrite(const ExprPtr &e,
        const std::function<ExprPtr(const ExprPtr &)> &leaf)
{
    switch (e->kind()) {
      case ExprKind::Literal:
      case ExprKind::Time:
      case ExprKind::StateVar:
        return e;
      case ExprKind::Var:
      case ExprKind::Attr:
      case ExprKind::NodeVar: {
        ExprPtr repl = leaf(e);
        return repl ? repl : e;
      }
      case ExprKind::Unary: {
        ExprPtr a = rewrite(e->operand(), leaf);
        if (a == e->operand())
            return e;
        return Expr::unary(e->unOp(), a);
      }
      case ExprKind::Binary: {
        ExprPtr a = rewrite(e->lhs(), leaf);
        ExprPtr b = rewrite(e->rhs(), leaf);
        if (a == e->lhs() && b == e->rhs())
            return e;
        return Expr::binary(e->binOp(), a, b);
      }
      case ExprKind::Call: {
        bool changed = false;
        ExprPtr callee = e->calleeExpr();
        if (callee) {
            ExprPtr nc = rewrite(callee, leaf);
            changed |= (nc != callee);
            callee = nc;
        }
        std::vector<ExprPtr> args;
        args.reserve(e->args().size());
        for (const auto &arg : e->args()) {
            ExprPtr na = rewrite(arg, leaf);
            changed |= (na != arg);
            args.push_back(na);
        }
        if (!changed)
            return e;
        if (callee)
            return Expr::callExpr(callee, std::move(args));
        return Expr::call(e->callee(), std::move(args));
      }
      case ExprKind::If: {
        ExprPtr c = rewrite(e->cond(), leaf);
        ExprPtr a = rewrite(e->thenBranch(), leaf);
        ExprPtr b = rewrite(e->elseBranch(), leaf);
        if (c == e->cond() && a == e->thenBranch() &&
            b == e->elseBranch()) {
            return e;
        }
        return Expr::ifThenElse(c, a, b);
      }
    }
    return e;
}

} // namespace

ExprPtr
substituteVars(const ExprPtr &e,
               const std::function<ExprPtr(const std::string &)> &lookup)
{
    return rewrite(e, [&](const ExprPtr &leaf) -> ExprPtr {
        if (leaf->kind() == ExprKind::Var)
            return lookup(leaf->varName());
        return nullptr;
    });
}

ExprPtr
substituteNodeVars(const ExprPtr &e,
                   const std::function<ExprPtr(const std::string &)> &lookup)
{
    return rewrite(e, [&](const ExprPtr &leaf) -> ExprPtr {
        if (leaf->kind() == ExprKind::NodeVar)
            return lookup(leaf->nodeName());
        return nullptr;
    });
}

ExprPtr
substituteAttrs(
    const ExprPtr &e,
    const std::function<ExprPtr(const std::string &, const std::string &)>
        &lookup)
{
    return rewrite(e, [&](const ExprPtr &leaf) -> ExprPtr {
        if (leaf->kind() == ExprKind::Attr)
            return lookup(leaf->attrBase(), leaf->attrName());
        return nullptr;
    });
}

ExprPtr
renameBindings(const ExprPtr &e,
               const std::function<std::string(const std::string &)> &rename)
{
    return rewrite(e, [&](const ExprPtr &leaf) -> ExprPtr {
        switch (leaf->kind()) {
          case ExprKind::Var: {
            std::string renamed = rename(leaf->varName());
            if (renamed == leaf->varName())
                return nullptr;
            return Expr::var(renamed);
          }
          case ExprKind::Attr: {
            std::string renamed = rename(leaf->attrBase());
            if (renamed == leaf->attrBase())
                return nullptr;
            return Expr::attr(renamed, leaf->attrName());
          }
          case ExprKind::NodeVar: {
            std::string renamed = rename(leaf->nodeName());
            if (renamed == leaf->nodeName())
                return nullptr;
            return Expr::nodeVar(renamed);
          }
          default:
            return nullptr;
        }
    });
}

ExprPtr
applyLambda(const Lambda &lambda, const std::vector<ExprPtr> &args)
{
    if (lambda.params.size() != args.size()) {
        throw TypeError(cat("lambda expects ", lambda.params.size(),
                            " argument(s), got ", args.size()));
    }
    std::unordered_map<std::string, ExprPtr> binding;
    for (std::size_t i = 0; i < args.size(); ++i)
        binding[lambda.params[i]] = args[i];
    return substituteVars(lambda.body,
                          [&](const std::string &name) -> ExprPtr {
                              auto it = binding.find(name);
                              return it == binding.end() ? nullptr
                                                         : it->second;
                          });
}

} // namespace ark::expr
