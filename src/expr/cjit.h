#ifndef ARK_EXPR_CJIT_H
#define ARK_EXPR_CJIT_H

/**
 * @file
 * Tier-5 execution: native code generation for lane tape programs.
 *
 * The fifth rung of the execution ladder (interpreter -> Tape ->
 * FusedTape -> LaneTape -> JIT): a LaneTape program is lowered to
 * straight-line C — one outer loop over the independent lanes whose
 * body is one statement per tape instruction, in stream order, with
 * no reassociation, over a per-lane scalar register file — compiled
 * to a shared object with `-O2 -fno-fast-math -ffp-contract=off`
 * (plus value-preserving vectorize/unroll/host-ISA flags), dlopened,
 * and called through one function pointer per step. This removes both
 * the per-instruction dispatch the interpreter pays and its strided
 * inter-op register spills, while keeping every IEEE operation,
 * operand order, and libm call identical per lane, so kernel results
 * are bit-identical to LaneTape::evalInto (regression-tested in
 * tests/jit_test.cc across random TLN/OBC/CNN programs at every
 * width, with and without FMA contraction).
 *
 * Kernels are pure functions of the tape *structure* (opcode stream,
 * width, register/output counts) — per-lane Const immediates arrive
 * through the `consts` argument at call time — so one compiled kernel
 * serves every parameter draw of a structure class. engine/jit.h
 * caches kernels in the ArtifactCache under engine::kernelKey, and
 * compiled objects persist in a bounded on-disk cache so warm starts
 * survive process restarts.
 *
 * Everything here degrades gracefully: no toolchain on the host, a
 * failed compile, or an armed FaultSite::JitCompile makes
 * compileKernel return null and callers fall back to the interpreted
 * tier. SimOptions::jit is off by default, so hosts without a C
 * compiler never attempt compilation at all.
 */

#include <cstddef>
#include <memory>
#include <string>

#include "expr/lanetape.h"
#include "support/dl.h"

namespace ark::expr {

/**
 * Native kernel entry point. `state` and `out` are SoA blocks of
 * numOutputs x width doubles (lane-minor, exactly LaneTape::evalInto's
 * layout), `consts` is the tape's per-lane constant table. Scratch
 * registers live on the kernel's own stack.
 */
using JitKernelFn = void (*)(const double *state, double t, double *out,
                             const double *consts);

/**
 * One compiled, loaded kernel. Immutable and thread-safe: call() is
 * const and touches only caller-owned buffers, so one kernel is
 * shared across every worker thread evaluating its structure class.
 * Owns the dlopen handle; the mapping lives as long as any
 * shared_ptr holder.
 */
class JitKernel
{
  public:
    JitKernel(support::DynamicLibrary lib, JitKernelFn fn,
              std::size_t width, std::size_t numOutputs)
        : lib_(std::move(lib)), fn_(fn), width_(width),
          numOutputs_(numOutputs)
    {
    }

    /** Evaluates the block; drop-in for LaneTape::evalInto minus the
     *  scratch argument (the kernel owns its registers). */
    void call(const double *state, double t, double *out,
              const double *consts) const
    {
        fn_(state, t, out, consts);
    }

    std::size_t width() const { return width_; }
    std::size_t numOutputs() const { return numOutputs_; }

  private:
    support::DynamicLibrary lib_;
    JitKernelFn fn_;
    std::size_t width_;
    std::size_t numOutputs_;
};

using JitKernelPtr = std::shared_ptr<const JitKernel>;

/**
 * Tier-5 bundle for scalar (non-lane) instances: a width-1 broadcast
 * of the system's FusedTape plus its compiled kernel. The integrator
 * drivers evaluate through the kernel when one is present.
 */
struct JitScalarRhs
{
    LaneTape tape;
    JitKernelPtr kernel;
};

/**
 * Whether the JIT tier should run, folding the ARK_JIT_FORCE
 * environment override into the option value: "1"/"on"/"true" forces
 * the tier on (the non-gating CI job runs tier-1 this way),
 * "0"/"off"/"false" forces it off, anything else defers to
 * `optionValue` (SimOptions::jit).
 */
bool jitEnabled(bool optionValue);

/**
 * Whether a working C toolchain was found (ARK_CC, then cc/gcc/clang
 * on PATH, probed once per process by compiling a trivial kernel).
 * False means compileKernel will always return null.
 */
bool jitToolchainAvailable();

/**
 * The C translation unit for `tape`'s kernel (exposed for tests).
 * Deterministic in the tape structure; floating-point literals are
 * emitted as hexfloats so parsing is exact.
 */
std::string emitKernelC(const LaneTape &tape);

/**
 * Emits, compiles, and loads the kernel for `tape`. `cacheKey` names
 * the on-disk cache entry (engine::kernelKey(tape).str(); pass an
 * empty string to bypass the disk cache). Returns null — never
 * throws — when no toolchain is available, the compiler fails, the
 * object cannot be loaded, or FaultSite::JitCompile fires; callers
 * fall back to the interpreted tier.
 */
JitKernelPtr compileKernel(const LaneTape &tape,
                           const std::string &cacheKey);

} // namespace ark::expr

#endif // ARK_EXPR_CJIT_H
