#include "expr/builtins.h"

#include <cmath>

#include "support/logging.h"

namespace ark::expr {

namespace {

const std::vector<BuiltinInfo> builtinTable = {
    {Builtin::Sin, "sin", 1},
    {Builtin::Cos, "cos", 1},
    {Builtin::Tan, "tan", 1},
    {Builtin::Exp, "exp", 1},
    {Builtin::Log, "log", 1},
    {Builtin::Sqrt, "sqrt", 1},
    {Builtin::Abs, "abs", 1},
    {Builtin::Tanh, "tanh", 1},
    {Builtin::Sgn, "sgn", 1},
    {Builtin::Min, "min", 2},
    {Builtin::Max, "max", 2},
    {Builtin::Pow, "pow", 2},
    {Builtin::Sat, "sat", 1},
    {Builtin::SatNi, "sat_ni", 1},
    {Builtin::Pulse, "pulse", 3},
};

} // namespace

const BuiltinInfo *
findBuiltin(const std::string &name)
{
    for (const auto &info : builtinTable)
        if (name == info.name)
            return &info;
    return nullptr;
}

const std::vector<BuiltinInfo> &
allBuiltins()
{
    return builtinTable;
}

double
satFn(double x)
{
    // Chua-Yang piecewise-linear saturation, the classic CNN f(x).
    return 0.5 * (std::fabs(x + 1.0) - std::fabs(x - 1.0));
}

double
satNiFn(double x)
{
    // MOS differential-pair-like soft saturation: smooth knees, unit
    // endpoints (sat_ni(1) == 1), steeper small-signal gain (~1.44).
    static const double scale = std::tanh(1.2);
    return std::tanh(1.2 * x) / scale;
}

double
pulseFn(double t, double start, double width)
{
    // Trapezoidal pulse of unit amplitude: linear rise/fall over 5% of
    // the width, flat top in between. Zero outside [start, start+width].
    if (width <= 0.0)
        return 0.0;
    double ramp = 0.05 * width;
    double rel = t - start;
    if (rel <= 0.0 || rel >= width)
        return 0.0;
    if (rel < ramp)
        return rel / ramp;
    if (rel > width - ramp)
        return (width - rel) / ramp;
    return 1.0;
}

double
evalBuiltin(Builtin id, const double *args, int count)
{
    switch (id) {
      case Builtin::Sin:
        return std::sin(args[0]);
      case Builtin::Cos:
        return std::cos(args[0]);
      case Builtin::Tan:
        return std::tan(args[0]);
      case Builtin::Exp:
        return std::exp(args[0]);
      case Builtin::Log:
        return std::log(args[0]);
      case Builtin::Sqrt:
        return std::sqrt(args[0]);
      case Builtin::Abs:
        return std::fabs(args[0]);
      case Builtin::Tanh:
        return std::tanh(args[0]);
      case Builtin::Sgn:
        return args[0] > 0.0 ? 1.0 : (args[0] < 0.0 ? -1.0 : 0.0);
      case Builtin::Min:
        return std::fmin(args[0], args[1]);
      case Builtin::Max:
        return std::fmax(args[0], args[1]);
      case Builtin::Pow:
        return std::pow(args[0], args[1]);
      case Builtin::Sat:
        return satFn(args[0]);
      case Builtin::SatNi:
        return satNiFn(args[0]);
      case Builtin::Pulse:
        return pulseFn(args[0], args[1], args[2]);
    }
    support::panic(support::cat("unknown builtin id ",
                                static_cast<int>(id), " count ", count));
}

} // namespace ark::expr
