#ifndef ARK_EXPR_BUILTINS_H
#define ARK_EXPR_BUILTINS_H

/**
 * @file
 * Builtin math functions available inside Ark expressions.
 *
 * The set covers the operators the paper's languages use (sin for the
 * Kuramoto model, sat/sat_ni for CNN nonlinearities, pulse for TLN
 * inputs) plus the usual scalar math toolbox. Builtins are pure
 * real->real (or reals->real) functions; they evaluate identically in
 * the tree-walking interpreter and the compiled tape.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace ark::expr {

/** Identifies a builtin; doubles as the tape opcode payload. */
enum class Builtin : std::uint8_t {
    Sin, Cos, Tan, Exp, Log, Sqrt, Abs, Tanh, Sgn,
    Min, Max, Pow,
    Sat,    ///< Standard CNN saturation: 0.5*(|x+1| - |x-1|).
    SatNi,  ///< Non-ideal saturation: tanh(1.2 x)/tanh(1.2).
    Pulse,  ///< pulse(t, t0, w): trapezoidal pulse, unit amplitude.
};

/** Descriptor for one builtin function. */
struct BuiltinInfo
{
    Builtin id;
    const char *name;
    int arity;
};

/** Looks up a builtin by name; returns nullptr if unknown. */
const BuiltinInfo *findBuiltin(const std::string &name);

/** All registered builtins (for error hints and fuzz tests). */
const std::vector<BuiltinInfo> &allBuiltins();

/** Evaluates a builtin on already-computed arguments. */
double evalBuiltin(Builtin id, const double *args, int count);

/** Convenience wrappers used directly by analysis code. */
double satFn(double x);
double satNiFn(double x);
double pulseFn(double t, double start, double width);

} // namespace ark::expr

#endif // ARK_EXPR_BUILTINS_H
