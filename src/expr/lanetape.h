#ifndef ARK_EXPR_LANETAPE_H
#define ARK_EXPR_LANETAPE_H

/**
 * @file
 * Lane-parallel batch execution of fused whole-system tapes.
 *
 * LaneTape is the fourth of five execution tiers (interpreter ->
 * per-variable Tape -> FusedTape -> LaneTape -> JIT native kernels,
 * expr/cjit.h): it re-executes a compiled FusedTape
 * program over a structure-of-arrays block of N instance states — one
 * instruction stream, W lanes wide. Each instruction's inner loop runs
 * lanewise over a compile-time width W in {1, 2, 4, 8} (runtime
 * dispatch picks the instantiation), so the per-instruction dispatch
 * cost is amortized W-fold and the lane loops autovectorize into SIMD
 * on targets that have it.
 *
 * Constants are lifted out of the instruction stream into a per-lane
 * constant table. This is what lets *heterogeneous-parameter,
 * homogeneous-structure* ensembles — e.g. a PUF battery where every
 * chip shares the circuit topology but carries its own mismatch
 * weights — share one program: merge() takes N structurally identical
 * FusedTapes that differ only in Const immediates and builds one
 * LaneTape whose Const instructions load lane-varying values.
 *
 * Memory layout (SoA, lane-minor): a block value v of variable or
 * register i in lane l lives at `buf[i * width() + l]`. Lanes never
 * interact — a NaN in one lane cannot contaminate another — which the
 * batch integrator's divergence masking relies on.
 *
 * Numerics: every lane executes the exact instruction sequence of the
 * source FusedTape with the same IEEE operations in the same order, so
 * lane results are bit-identical to scalar FusedTape::evalInto on the
 * same state (builtin calls included; they evaluate per lane).
 */

#include <cstddef>
#include <optional>
#include <vector>

#include "expr/tape.h"

namespace ark::expr {

class FusedTape;

/**
 * A fused program batched across ensemble lanes. Immutable after
 * construction; evalInto is const and takes caller scratch, so one
 * LaneTape may be shared across threads.
 */
class LaneTape
{
  public:
    /** Widest supported lane block. */
    static constexpr std::size_t kMaxLanes = 8;

    /**
     * Batches one program over `lanes` identical-parameter lanes
     * (homogeneous ensembles: one system, many initial states).
     * `lanes` must be in [1, kMaxLanes].
     */
    static LaneTape broadcast(const FusedTape &tape, std::size_t lanes);

    /**
     * Merges N structurally identical programs (same instruction
     * stream, registers, and outputs; only Const immediates may
     * differ) into one lane-batched program with per-lane constant
     * tables. Returns nullopt when any stream diverges structurally —
     * the caller falls back to scalar execution. N must be in
     * [1, kMaxLanes].
     */
    static std::optional<LaneTape>
    merge(const std::vector<const FusedTape *> &tapes);

    /** Logical lanes (ensemble instances) in the block. */
    std::size_t lanes() const { return lanes_; }

    /**
     * Physical lane width: the smallest of {1, 2, 4, 8} holding
     * lanes(). Lanes beyond lanes() are padding; callers must fill
     * their state columns with finite values (the batch integrator
     * replicates lane 0) and ignore their outputs.
     */
    std::size_t width() const { return width_; }

    /** State variables / output slots per lane. */
    std::size_t numOutputs() const { return numOutputs_; }

    /** Scratch doubles evalInto requires (numRegs x width). */
    std::size_t scratchSize() const
    {
        return static_cast<std::size_t>(numRegs_) * width_;
    }

    /** Instruction count, including WriteOutput ops. */
    std::size_t size() const { return ops_.size(); }

    /** The program; Const ops hold a constant-table slot in `a`.
     *  Exposed for the tier-5 JIT emitter and its cache key. */
    const std::vector<TapeOp> &ops() const { return ops_; }

    /** Per-lane constant table, slot-major (slot * width() + lane);
     *  the `consts` argument a JIT kernel is called with. */
    const std::vector<double> &constants() const { return constants_; }

    /** Scratch registers per lane (scratchSize() / width()). */
    int numRegs() const { return numRegs_; }

    /**
     * Evaluates the whole block: `state` and `out` are SoA blocks of
     * numOutputs() x width() doubles, `regs` holds scratchSize()
     * doubles. One shared time t drives every lane (the batch
     * integrator runs a homogeneous time grid). `out` must not alias
     * `state` or `regs`.
     */
    void evalInto(const double *state, double t, double *out,
                  double *regs) const;

    /**
     * True when two fused programs would merge: identical instruction
     * streams up to Const immediates. Cheap (one pass over the ops);
     * used to group ensemble instances into lane blocks before paying
     * for merge().
     */
    static bool compatible(const FusedTape &a, const FusedTape &b);

  private:
    LaneTape() = default;

    template <int W>
    void evalIntoT(const double *state, double t, double *out,
                   double *regs) const;

    /** Program; Const ops hold a constant-table slot in `a`. */
    std::vector<TapeOp> ops_;
    /** Per-lane constants, slot-major: constants_[slot * width_ + l]. */
    std::vector<double> constants_;
    int numRegs_ = 0;
    std::size_t numOutputs_ = 0;
    std::size_t lanes_ = 0;
    std::size_t width_ = 0;
};

} // namespace ark::expr

#endif // ARK_EXPR_LANETAPE_H
