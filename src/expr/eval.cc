#include "expr/eval.h"

#include <cmath>

#include "expr/builtins.h"
#include "support/error.h"
#include "support/logging.h"

namespace ark::expr {

using support::cat;
using support::TypeError;

namespace {

Value
evalBinary(BinOp op, const Value &lhs, const Value &rhs)
{
    if (isLogical(op)) {
        bool a = lhs.asBool();
        bool b = rhs.asBool();
        return Value::boolean(op == BinOp::And ? (a && b) : (a || b));
    }
    if (isComparison(op)) {
        double a = lhs.asReal();
        double b = rhs.asReal();
        switch (op) {
          case BinOp::Lt: return Value::boolean(a < b);
          case BinOp::Le: return Value::boolean(a <= b);
          case BinOp::Gt: return Value::boolean(a > b);
          case BinOp::Ge: return Value::boolean(a >= b);
          case BinOp::Eq: return Value::boolean(a == b);
          case BinOp::Ne: return Value::boolean(a != b);
          default: break;
        }
    }
    // Arithmetic: stay integral only when both sides are Int.
    if (lhs.isInt() && rhs.isInt() && op != BinOp::Div) {
        std::int64_t a = lhs.asInt();
        std::int64_t b = rhs.asInt();
        switch (op) {
          case BinOp::Add: return Value::integer(a + b);
          case BinOp::Sub: return Value::integer(a - b);
          case BinOp::Mul: return Value::integer(a * b);
          case BinOp::Pow:
            return Value::real(std::pow(static_cast<double>(a),
                                        static_cast<double>(b)));
          default: break;
        }
    }
    double a = lhs.asReal();
    double b = rhs.asReal();
    switch (op) {
      case BinOp::Add: return Value::real(a + b);
      case BinOp::Sub: return Value::real(a - b);
      case BinOp::Mul: return Value::real(a * b);
      case BinOp::Div: return Value::real(a / b);
      case BinOp::Pow: return Value::real(std::pow(a, b));
      default: break;
    }
    throw TypeError(cat("unsupported binary operator ", binOpName(op)));
}

} // namespace

Value
eval(const ExprPtr &e, const EvalContext &ctx)
{
    switch (e->kind()) {
      case ExprKind::Literal:
        return e->literalValue();
      case ExprKind::Var: {
        if (ctx.lookupVar) {
            if (auto v = ctx.lookupVar(e->varName()))
                return *v;
        }
        throw TypeError(cat("unbound variable '", e->varName(), "'"));
      }
      case ExprKind::Attr: {
        if (ctx.lookupAttr) {
            if (auto v = ctx.lookupAttr(e->attrBase(), e->attrName()))
                return *v;
        }
        throw TypeError(cat("unbound attribute '", e->attrBase(), ".",
                            e->attrName(), "'"));
      }
      case ExprKind::Time:
        return Value::real(ctx.time);
      case ExprKind::Unary: {
        Value v = eval(e->operand(), ctx);
        if (e->unOp() == UnOp::Not)
            return Value::boolean(!v.asBool());
        if (v.isInt())
            return Value::integer(-v.asInt());
        return Value::real(-v.asReal());
      }
      case ExprKind::Binary:
        return evalBinary(e->binOp(), eval(e->lhs(), ctx),
                          eval(e->rhs(), ctx));
      case ExprKind::Call: {
        // Lambda-valued callee (variable or attribute holding lambd).
        if (e->calleeExpr()) {
            Value callee = eval(e->calleeExpr(), ctx);
            const Lambda &fn = callee.asFunction();
            std::vector<ExprPtr> argExprs;
            argExprs.reserve(e->args().size());
            for (const auto &arg : e->args())
                argExprs.push_back(Expr::literal(eval(arg, ctx)));
            return eval(applyLambda(fn, argExprs), ctx);
        }
        // A named callee may still be a lambda-valued variable.
        if (ctx.lookupVar) {
            if (auto v = ctx.lookupVar(e->callee());
                v && v->isFunction()) {
                std::vector<ExprPtr> argExprs;
                argExprs.reserve(e->args().size());
                for (const auto &arg : e->args())
                    argExprs.push_back(Expr::literal(eval(arg, ctx)));
                return eval(applyLambda(v->asFunction(), argExprs), ctx);
            }
        }
        const BuiltinInfo *info = findBuiltin(e->callee());
        if (!info)
            throw TypeError(cat("unknown function '", e->callee(), "'"));
        if (static_cast<int>(e->args().size()) != info->arity) {
            throw TypeError(cat("function '", e->callee(), "' expects ",
                                info->arity, " argument(s), got ",
                                e->args().size()));
        }
        double argv[4] = {0, 0, 0, 0};
        for (std::size_t i = 0; i < e->args().size(); ++i)
            argv[i] = evalReal(e->args()[i], ctx);
        return Value::real(evalBuiltin(info->id, argv, info->arity));
      }
      case ExprKind::If:
        return evalBool(e->cond(), ctx) ? eval(e->thenBranch(), ctx)
                                        : eval(e->elseBranch(), ctx);
      case ExprKind::NodeVar: {
        if (ctx.lookupNodeVar) {
            if (auto v = ctx.lookupNodeVar(e->nodeName()))
                return Value::real(*v);
        }
        throw TypeError(cat("unresolved node variable var(", e->nodeName(),
                            ")"));
      }
      case ExprKind::StateVar: {
        if (ctx.lookupState)
            return Value::real(ctx.lookupState(e->stateIndex()));
        throw TypeError("state variable reference without state context");
      }
    }
    throw TypeError("unreachable expression kind");
}

double
evalReal(const ExprPtr &e, const EvalContext &ctx)
{
    return eval(e, ctx).asReal();
}

bool
evalBool(const ExprPtr &e, const EvalContext &ctx)
{
    return eval(e, ctx).asBool();
}

const char *
staticTypeName(StaticType t)
{
    switch (t) {
      case StaticType::Real: return "real";
      case StaticType::Int: return "int";
      case StaticType::Bool: return "bool";
      case StaticType::Function: return "lambd";
    }
    return "?";
}

namespace {

StaticType
requireNumeric(StaticType t, const char *where)
{
    if (t != StaticType::Real && t != StaticType::Int) {
        throw TypeError(cat(where, " requires a numeric operand, got ",
                            staticTypeName(t)));
    }
    return t;
}

} // namespace

StaticType
checkType(const ExprPtr &e, const TypeScope &scope)
{
    switch (e->kind()) {
      case ExprKind::Literal:
        switch (e->literalValue().kind()) {
          case ValueKind::Real: return StaticType::Real;
          case ValueKind::Int: return StaticType::Int;
          case ValueKind::Bool: return StaticType::Bool;
          case ValueKind::Function: return StaticType::Function;
        }
        return StaticType::Real;
      case ExprKind::Var: {
        if (scope.varType) {
            if (auto t = scope.varType(e->varName()))
                return *t;
        }
        throw TypeError(cat("variable '", e->varName(),
                            "' is not in scope"));
      }
      case ExprKind::Attr: {
        if (scope.attrType) {
            if (auto t = scope.attrType(e->attrBase(), e->attrName()))
                return *t;
        }
        throw TypeError(cat("attribute '", e->attrBase(), ".",
                            e->attrName(), "' is not in scope"));
      }
      case ExprKind::Time:
        return StaticType::Real;
      case ExprKind::Unary: {
        StaticType t = checkType(e->operand(), scope);
        if (e->unOp() == UnOp::Not) {
            if (t != StaticType::Bool) {
                throw TypeError(cat("'not' requires a bool operand, got ",
                                    staticTypeName(t)));
            }
            return StaticType::Bool;
        }
        return requireNumeric(t, "negation");
      }
      case ExprKind::Binary: {
        StaticType a = checkType(e->lhs(), scope);
        StaticType b = checkType(e->rhs(), scope);
        BinOp op = e->binOp();
        if (isLogical(op)) {
            if (a != StaticType::Bool || b != StaticType::Bool) {
                throw TypeError(cat("'", binOpName(op),
                                    "' requires bool operands"));
            }
            return StaticType::Bool;
        }
        requireNumeric(a, binOpName(op));
        requireNumeric(b, binOpName(op));
        if (isComparison(op))
            return StaticType::Bool;
        if (op == BinOp::Div || op == BinOp::Pow)
            return StaticType::Real;
        return (a == StaticType::Int && b == StaticType::Int)
                   ? StaticType::Int
                   : StaticType::Real;
      }
      case ExprKind::Call: {
        int expected = -1;
        if (e->calleeExpr()) {
            const Expr &callee = *e->calleeExpr();
            if (callee.kind() == ExprKind::Attr && scope.lambdaArity) {
                if (auto n = scope.lambdaArity(callee.attrBase(),
                                               callee.attrName())) {
                    expected = *n;
                }
            } else if (callee.kind() == ExprKind::Var &&
                       scope.lambdaArity) {
                if (auto n = scope.lambdaArity(callee.varName(), ""))
                    expected = *n;
            }
            if (expected < 0) {
                StaticType t = checkType(e->calleeExpr(), scope);
                if (t != StaticType::Function) {
                    throw TypeError(cat("call target is not a lambd (",
                                        staticTypeName(t), ")"));
                }
            }
        } else {
            const BuiltinInfo *info = findBuiltin(e->callee());
            if (info) {
                expected = info->arity;
            } else if (scope.lambdaArity) {
                if (auto n = scope.lambdaArity(e->callee(), ""))
                    expected = *n;
            }
            if (expected < 0) {
                throw TypeError(cat("unknown function '", e->callee(),
                                    "'"));
            }
        }
        if (expected >= 0 &&
            static_cast<int>(e->args().size()) != expected) {
            throw TypeError(cat("call expects ", expected,
                                " argument(s), got ", e->args().size()));
        }
        for (const auto &arg : e->args())
            requireNumeric(checkType(arg, scope), "function argument");
        return StaticType::Real;
      }
      case ExprKind::If: {
        StaticType c = checkType(e->cond(), scope);
        if (c != StaticType::Bool)
            throw TypeError("if condition must be bool");
        StaticType a = checkType(e->thenBranch(), scope);
        StaticType b = checkType(e->elseBranch(), scope);
        if (a == b)
            return a;
        bool numeric = (a == StaticType::Real || a == StaticType::Int) &&
                       (b == StaticType::Real || b == StaticType::Int);
        if (numeric)
            return StaticType::Real;
        throw TypeError(cat("if branches have incompatible types ",
                            staticTypeName(a), " and ",
                            staticTypeName(b)));
      }
      case ExprKind::NodeVar: {
        if (scope.nodeVarOk && !scope.nodeVarOk(e->nodeName())) {
            throw TypeError(cat("var(", e->nodeName(),
                                ") references an unknown node"));
        }
        return StaticType::Real;
      }
      case ExprKind::StateVar:
        return StaticType::Real;
    }
    throw TypeError("unreachable expression kind");
}

} // namespace ark::expr
