#ifndef ARK_EXPR_FOLD_H
#define ARK_EXPR_FOLD_H

/**
 * @file
 * Constant folding and algebraic simplification — the *exact,
 * always-on* stage of the rewrite contract (see expr/expr.h):
 * every rule here preserves IEEE values bit-for-bit (modulo the
 * documented x+0 sign-of-zero caveat), so the compiler applies them
 * on every lowering. Rounding-changing rewrites live in
 * expr/rewrite.h behind an explicit opt-in.
 *
 * Run after production-rule rewriting substitutes attribute values, so
 * the ODE right-hand sides handed to the simulator are as small as
 * possible. Simplifications use field identities (x*0 == 0, x+0 == x);
 * like most compilers we accept that this discards NaN propagation
 * from eliminated subtrees.
 *
 * Two entry styles:
 *
 *  - fold(e): whole-tree bottom-up pass (idempotent);
 *  - foldUnaryOf/foldBinaryOf/foldCallOf/foldIfOf: single-step
 *    constructors for callers that already hold folded children and
 *    want the folded parent without a second walk (the compiler's
 *    one-pass instantiate). fold(e) is exactly the bottom-up
 *    composition of these steps, so both styles produce the same
 *    (interned, hence pointer-identical) result.
 */

#include <string>
#include <vector>

#include "expr/expr.h"

namespace ark::expr {

/**
 * Returns an equivalent, simplified expression. Idempotent; shares
 * unchanged subtrees with the input.
 */
ExprPtr fold(const ExprPtr &e);

/** @name Single-step folding constructors.
 * Each builds the folded node for an operator applied to
 * already-folded children: literal children evaluate, the local
 * identities apply, and otherwise the plain node is built. Children
 * are NOT folded recursively — pass folded subtrees.
 */
/// @{

/** Folded `op a`. */
ExprPtr foldUnaryOf(UnOp op, const ExprPtr &a);

/** Folded `a op b`. */
ExprPtr foldBinaryOf(BinOp op, const ExprPtr &a, const ExprPtr &b);

/**
 * Folded builtin call `callee(args...)`: evaluates when every
 * argument is literal and the callee is a known builtin; otherwise
 * builds the call node. (Lambda-callee calls are inlined by the
 * compiler before folding and have no step constructor.)
 */
ExprPtr foldCallOf(const std::string &callee, std::vector<ExprPtr> args);

/** Folded `if c then a else b`: literal conditions pick a branch. */
ExprPtr foldIfOf(const ExprPtr &c, const ExprPtr &a, const ExprPtr &b);

/// @}

/** True if the expression is a literal with the given real value. */
bool isRealLiteral(const ExprPtr &e, double v);

} // namespace ark::expr

#endif // ARK_EXPR_FOLD_H
