#ifndef ARK_EXPR_FOLD_H
#define ARK_EXPR_FOLD_H

/**
 * @file
 * Constant folding and algebraic simplification.
 *
 * Run after production-rule rewriting substitutes attribute values, so
 * the ODE right-hand sides handed to the simulator are as small as
 * possible. Simplifications use field identities (x*0 == 0, x+0 == x);
 * like most compilers we accept that this discards NaN propagation
 * from eliminated subtrees.
 */

#include "expr/expr.h"

namespace ark::expr {

/**
 * Returns an equivalent, simplified expression. Idempotent; shares
 * unchanged subtrees with the input.
 */
ExprPtr fold(const ExprPtr &e);

/** True if the expression is a literal with the given real value. */
bool isRealLiteral(const ExprPtr &e, double v);

} // namespace ark::expr

#endif // ARK_EXPR_FOLD_H
