#include "expr/tape.h"

#include <algorithm>
#include <cassert>

#include "expr/tape_exec.h"
#include "support/error.h"
#include "support/logging.h"

namespace ark::expr {

using support::cat;
using support::CompileError;

int
Tape::newReg()
{
    return numRegs_++;
}

int
Tape::addOp(TapeOp op)
{
    ops_.push_back(op);
    return op.dst;
}

namespace {

OpCode
binOpCode(BinOp op)
{
    switch (op) {
      case BinOp::Add: return OpCode::Add;
      case BinOp::Sub: return OpCode::Sub;
      case BinOp::Mul: return OpCode::Mul;
      case BinOp::Div: return OpCode::Div;
      case BinOp::Lt: return OpCode::Lt;
      case BinOp::Le: return OpCode::Le;
      case BinOp::Gt: return OpCode::Gt;
      case BinOp::Ge: return OpCode::Ge;
      case BinOp::Eq: return OpCode::EqOp;
      case BinOp::Ne: return OpCode::NeOp;
      case BinOp::And: return OpCode::AndOp;
      case BinOp::Or: return OpCode::OrOp;
      case BinOp::Pow:
        break; // lowered to CallB(Pow)
    }
    support::panic("binOpCode: unhandled operator");
}

} // namespace

int
Tape::emit(const ExprPtr &e)
{
    switch (e->kind()) {
      case ExprKind::Literal: {
        const Value &v = e->literalValue();
        double imm;
        if (v.isBool())
            imm = v.asBool() ? 1.0 : 0.0;
        else
            imm = v.asReal(); // throws TypeError for lambdas
        int dst = newReg();
        return addOp({OpCode::Const, Builtin::Sin, dst, -1, -1, -1, imm});
      }
      case ExprKind::Time: {
        int dst = newReg();
        return addOp({OpCode::LoadTime, Builtin::Sin, dst, -1, -1, -1,
                      0.0});
      }
      case ExprKind::StateVar: {
        int dst = newReg();
        maxStateIndex_ = std::max(maxStateIndex_, e->stateIndex());
        return addOp({OpCode::LoadState, Builtin::Sin, dst,
                      e->stateIndex(), -1, -1, 0.0});
      }
      case ExprKind::Unary: {
        int a = emit(e->operand());
        int dst = newReg();
        OpCode op = e->unOp() == UnOp::Neg ? OpCode::Neg : OpCode::NotOp;
        return addOp({op, Builtin::Sin, dst, a, -1, -1, 0.0});
      }
      case ExprKind::Binary: {
        int a = emit(e->lhs());
        int b = emit(e->rhs());
        int dst = newReg();
        if (e->binOp() == BinOp::Pow) {
            return addOp({OpCode::CallB, Builtin::Pow, dst, a, b, -1,
                          0.0});
        }
        return addOp({binOpCode(e->binOp()), Builtin::Sin, dst, a, b, -1,
                      0.0});
      }
      case ExprKind::Call: {
        if (e->calleeExpr()) {
            throw CompileError(
                cat("cannot compile unresolved lambda call ", e->str(),
                    " to a tape"));
        }
        const BuiltinInfo *info = findBuiltin(e->callee());
        if (!info) {
            throw CompileError(cat("cannot compile unknown function '",
                                   e->callee(), "' to a tape"));
        }
        if (static_cast<int>(e->args().size()) != info->arity) {
            throw CompileError(cat("function '", e->callee(),
                                   "' arity mismatch in tape compile"));
        }
        int regs[3] = {-1, -1, -1};
        for (std::size_t i = 0; i < e->args().size(); ++i)
            regs[i] = emit(e->args()[i]);
        int dst = newReg();
        return addOp({OpCode::CallB, info->id, dst, regs[0], regs[1],
                      regs[2], 0.0});
      }
      case ExprKind::If: {
        int c = emit(e->cond());
        int a = emit(e->thenBranch());
        int b = emit(e->elseBranch());
        int dst = newReg();
        return addOp({OpCode::Select, Builtin::Sin, dst, a, b, c, 0.0});
      }
      case ExprKind::Var:
        throw CompileError(cat("cannot compile free variable '",
                               e->varName(), "' to a tape"));
      case ExprKind::Attr:
        throw CompileError(cat("cannot compile unresolved attribute '",
                               e->attrBase(), ".", e->attrName(),
                               "' to a tape"));
      case ExprKind::NodeVar:
        throw CompileError(cat("cannot compile unresolved var(",
                               e->nodeName(), ") to a tape"));
    }
    throw CompileError("unreachable expression kind in tape compile");
}

Tape
Tape::compile(const ExprPtr &e)
{
    Tape tape;
    tape.emit(e);
    return tape;
}

double
Tape::eval(const double *state, double t, std::vector<double> &regs) const
{
    if (static_cast<int>(regs.size()) < numRegs_)
        regs.resize(static_cast<std::size_t>(numRegs_));
    return eval(state, t, regs.data());
}

double
Tape::eval(const double *state, double t, double *regs) const
{
    assert(regs != nullptr || numRegs_ == 0);
    double result = 0.0;
    for (const TapeOp &op : ops_) {
        double out = detail::execCompute(op, state, t, regs);
        regs[op.dst] = out;
        result = out;
    }
    return result;
}

double
Tape::evalAlloc(const std::vector<double> &state, double t) const
{
    std::vector<double> regs;
    return eval(state.data(), t, regs);
}

} // namespace ark::expr
