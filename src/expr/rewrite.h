#ifndef ARK_EXPR_REWRITE_H
#define ARK_EXPR_REWRITE_H

/**
 * @file
 * Opt-in reassociation/distribution rewrites — the *rounding-changing*
 * stage of the rewrite contract (see expr/expr.h). Everything here
 * changes where IEEE roundings happen (never the real-arithmetic
 * value), so the pass runs only behind sim::SimOptions::tapeReassoc
 * (or the ARK_TAPE_REASSOC override) — the same tolerance-level
 * contract as tapeFma, and in fact in service of it: the point of the
 * pass is to expose FusedMulAdd contractions that the single-use
 * Mul→Add matcher cannot see through intervening Div/Neg nodes.
 *
 * Rules (bottom-up, arithmetic value positions only):
 *
 *  - `x / c` (literal c) → `x * (1/c)` when both c and 1/c are finite
 *    and nonzero — division by a constant becomes a multiplicative
 *    factor that can join a product chain;
 *  - multiplicative chains flatten: literal factors and Neg signs
 *    gather into one leading coefficient (`(k1*x)*k2` → `(k1*k2)*x`),
 *    non-literal factor order preserved;
 *  - `-(k*x)` → `(-k)*x` and `a - k*x` → `a + (-k)*x` (exact sign
 *    flips on the literal) so subtracted products still contract.
 *
 * Sum chains are never reordered — each Add keeps its operand order,
 * so an n-term sum of products lowers to n-1 FusedMulAdds plus one
 * Mul without changing summation order. Subtrees under comparisons,
 * And/Or/Not, and If *conditions* are left untouched: a rounding
 * change there could flip a branch, which is a discontinuous (not
 * tolerance-level) result change. If *branches* are value positions
 * and are rewritten.
 *
 * GmC-TLN is the motivating case: its rules have the shape
 * `(w * var(t)) / c`, which contracts 0% today because the Div sits
 * between product and sum; under this pass every such term becomes
 * `(w/c) * var(t)` feeding its Add directly.
 */

#include <cstdint>
#include <vector>

#include "expr/expr.h"

namespace ark::expr {

/** What reassociate() changed (arkc --ir-stats, tests). */
struct RewriteStats
{
    std::uint64_t divReciprocals = 0; ///< Div-by-literal → Mul-by-recip.
    std::uint64_t mulConstFolds = 0;  ///< Product chains whose literal
                                      ///< factors/signs were gathered.
    std::uint64_t negFolds = 0;       ///< Neg folded into a coefficient.
    std::uint64_t subToAdd = 0;       ///< Sub rewritten to Add of a
                                      ///< negated product.
    std::uint64_t nodesBefore = 0;    ///< Tree nodes before the pass.
    std::uint64_t nodesAfter = 0;     ///< Tree nodes after the pass.
};

/**
 * Applies the reassociation rules to one expression. Returns the
 * rewritten (interned) tree; `stats`, when non-null, accumulates
 * counts across calls. Pure: never applied implicitly — callers gate
 * on reassocEnabled().
 */
ExprPtr reassociate(const ExprPtr &e, RewriteStats *stats = nullptr);

/**
 * Vector form for whole-system RHS lowering; also bumps the
 * `ark.compile.rewrite_ops_removed` telemetry counter by the node
 * delta.
 */
std::vector<ExprPtr> reassociate(const std::vector<ExprPtr> &outputs,
                                 RewriteStats *stats = nullptr);

/**
 * Whether the reassociation tape variant should run, folding the
 * ARK_TAPE_REASSOC environment override into the option value:
 * "1"/"on"/"true" forces the pass on (the ASan CI job runs the expr
 * suites this way), "0"/"off"/"false" forces it off, anything else
 * defers to `optionValue` (sim::SimOptions::tapeReassoc). Mirrors
 * expr::jitEnabled / ARK_JIT_FORCE.
 */
bool reassocEnabled(bool optionValue);

} // namespace ark::expr

#endif // ARK_EXPR_REWRITE_H
