#include "expr/cjit.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <system_error>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "expr/builtins.h"
#include "expr/tape.h"
#include "support/faultinject.h"
#include "support/telemetry.h"

namespace ark::expr {

namespace fs = std::filesystem;

namespace {

/** Compiled objects kept in the on-disk cache (entries, not bytes). */
constexpr std::size_t kMaxDiskEntries = 256;

/** The exported kernel symbol every emitted translation unit defines. */
constexpr const char *kKernelSymbol = "ark_kernel";

telemetry::Counter &
compilesCounter()
{
    static telemetry::Counter &counter =
        telemetry::Registry::shared().counter("ark.compile.jit_compiles");
    return counter;
}

telemetry::Counter &
failuresCounter()
{
    static telemetry::Counter &counter =
        telemetry::Registry::shared().counter("ark.compile.jit_failures");
    return counter;
}

telemetry::Counter &
diskHitsCounter()
{
    static telemetry::Counter &counter =
        telemetry::Registry::shared().counter(
            "ark.compile.jit_disk_hits");
    return counter;
}

telemetry::Histogram &
compileNsHistogram()
{
    static telemetry::Histogram &hist =
        telemetry::Registry::shared().histogram(
            "ark.compile.jit_compile_ns");
    return hist;
}

/** Exact double literal: hexfloats round-trip bit-for-bit through any
 *  conforming C compiler, so emitted constants never re-round. */
std::string
hexLiteral(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
}

/** Single-quoted POSIX shell word; empty when unquotable. */
std::string
shellQuote(const std::string &s)
{
    if (s.find('\'') != std::string::npos)
        return {};
    return "'" + s + "'";
}

/** Runs a shell command, discarding its output; true on exit 0. */
bool
runCommand(const std::string &cmd)
{
    const int status =
        std::system((cmd + " >/dev/null 2>&1").c_str());
    return status != -1 && WIFEXITED(status) &&
           WEXITSTATUS(status) == 0;
}

/**
 * Compile flags shared by the probe and every kernel. -O2 removes the
 * interpreter's dispatch overhead; -fno-fast-math -ffp-contract=off
 * pin IEEE semantics — no reassociation, no value-changing
 * transforms, and no contraction of the emitted a*b+c statements into
 * hardware FMA (FusedMulAdd lowers to an explicit fma() call instead,
 * matching the interpreter's std::fma). -ftree-vectorize,
 * -funroll-loops, and -march=native are value-preserving here: every
 * emitted lane loop is element-wise (no reductions, no cross-lane
 * flow), so vector, unrolled, and wider-ISA code performs the
 * identical IEEE operation per element — targeting the running host
 * is the point of compiling at runtime, and the equivalence suite in
 * tests/jit_test.cc holds the kernels to bit-identity either way.
 * (Hosts whose cc rejects -march=native fail the toolchain probe and
 * stay on the interpreted tiers.)
 */
constexpr const char *kCompileFlags =
    "-O2 -march=native -ftree-vectorize -funroll-loops -fPIC -shared "
    "-fno-fast-math -ffp-contract=off";

/** True when `compiler` can produce a loadable kernel end to end. */
bool
probeCompiler(const std::string &compiler)
{
    support::TempDir dir = support::TempDir::create("ark-jit-probe-");
    if (!dir.ok())
        return false;
    const std::string src = dir.path() + "/probe.c";
    const std::string so = dir.path() + "/probe.so";
    {
        std::ofstream out(src);
        if (!out)
            return false;
        out << "double ark_probe(double x) { return x + 1.0; }\n";
    }
    const std::string qcc = shellQuote(compiler);
    const std::string qso = shellQuote(so);
    const std::string qsrc = shellQuote(src);
    if (qcc.empty() || qso.empty() || qsrc.empty())
        return false;
    if (!runCommand(qcc + " " + kCompileFlags + " -o " + qso + " " +
                    qsrc + " -lm"))
        return false;
    support::DynamicLibrary lib = support::DynamicLibrary::open(so);
    return lib.ok() && lib.symbol("ark_probe") != nullptr;
}

/** The working C compiler, probed once per process; empty when none. */
const std::string &
jitCompilerPath()
{
    static const std::string compiler = [] {
        std::vector<std::string> candidates;
        if (const char *env = std::getenv("ARK_CC");
            env != nullptr && env[0] != '\0')
            candidates.emplace_back(env);
        candidates.emplace_back("cc");
        candidates.emplace_back("gcc");
        candidates.emplace_back("clang");
        for (const std::string &candidate : candidates)
            if (probeCompiler(candidate))
                return candidate;
        return std::string{};
    }();
    return compiler;
}

/**
 * The on-disk kernel cache directory (created on demand), or empty
 * when disabled. ARK_JIT_CACHE_DIR overrides (empty value disables);
 * the default follows the XDG cache convention. Re-read per call so
 * tests can point successive compilations at fresh directories.
 */
std::string
diskCacheDir()
{
    std::string dir;
    if (const char *env = std::getenv("ARK_JIT_CACHE_DIR")) {
        if (env[0] == '\0')
            return {};
        dir = env;
    } else if (const char *xdg = std::getenv("XDG_CACHE_HOME");
               xdg != nullptr && xdg[0] != '\0') {
        dir = std::string(xdg) + "/ark/jit";
    } else if (const char *home = std::getenv("HOME");
               home != nullptr && home[0] != '\0') {
        dir = std::string(home) + "/.cache/ark/jit";
    } else {
        return {};
    }
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return {};
    return dir;
}

/**
 * Bounds the disk cache: oldest-mtime entries beyond kMaxDiskEntries
 * are removed. Best-effort — races with concurrent processes only
 * over-trim, and a trimmed entry just recompiles.
 */
void
pruneDiskCache(const std::string &dir)
{
    std::error_code ec;
    std::vector<std::pair<fs::file_time_type, fs::path>> entries;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.path().extension() != ".so")
            continue;
        const auto mtime = fs::last_write_time(entry.path(), ec);
        if (!ec)
            entries.emplace_back(mtime, entry.path());
    }
    if (entries.size() <= kMaxDiskEntries)
        return;
    std::sort(entries.begin(), entries.end());
    const std::size_t excess = entries.size() - kMaxDiskEntries;
    for (std::size_t i = 0; i < excess; ++i)
        fs::remove(entries[i].second, ec);
}

/** Loads a compiled object and resolves its kernel; null on failure. */
JitKernelPtr
loadKernel(const std::string &path, const LaneTape &tape)
{
    support::DynamicLibrary lib = support::DynamicLibrary::open(path);
    if (!lib.ok())
        return nullptr;
    void *sym = lib.symbol(kKernelSymbol);
    if (sym == nullptr)
        return nullptr;
    return std::make_shared<const JitKernel>(
        std::move(lib), reinterpret_cast<JitKernelFn>(sym),
        tape.width(), tape.numOutputs());
}

/** C spelling of one builtin call over already-formatted arguments. */
std::string
builtinCall(Builtin id, const std::vector<std::string> &args)
{
    switch (id) {
      case Builtin::Sin:
        return "sin(" + args[0] + ")";
      case Builtin::Cos:
        return "cos(" + args[0] + ")";
      case Builtin::Tan:
        return "tan(" + args[0] + ")";
      case Builtin::Exp:
        return "exp(" + args[0] + ")";
      case Builtin::Log:
        return "log(" + args[0] + ")";
      case Builtin::Sqrt:
        return "sqrt(" + args[0] + ")";
      case Builtin::Abs:
        return "fabs(" + args[0] + ")";
      case Builtin::Tanh:
        return "tanh(" + args[0] + ")";
      case Builtin::Sgn:
        return "ark_sgn(" + args[0] + ")";
      case Builtin::Min:
        return "fmin(" + args[0] + ", " + args[1] + ")";
      case Builtin::Max:
        return "fmax(" + args[0] + ", " + args[1] + ")";
      case Builtin::Pow:
        return "pow(" + args[0] + ", " + args[1] + ")";
      case Builtin::Sat:
        return "ark_sat(" + args[0] + ")";
      case Builtin::SatNi:
        return "ark_sat_ni(" + args[0] + ")";
      case Builtin::Pulse:
        return "ark_pulse(" + args[0] + ", " + args[1] + ", " +
               args[2] + ")";
    }
    return {};
}

} // namespace

bool
jitEnabled(bool optionValue)
{
    // -1 = no override, 0/1 = forced. Memoized: the environment is
    // process state, and the CI job that forces the tier on sets it
    // before launch.
    static const int forced = [] {
        const char *env = std::getenv("ARK_JIT_FORCE");
        if (env == nullptr)
            return -1;
        const std::string v(env);
        if (v == "1" || v == "on" || v == "true")
            return 1;
        if (v == "0" || v == "off" || v == "false")
            return 0;
        return -1;
    }();
    if (forced >= 0)
        return forced == 1;
    return optionValue;
}

bool
jitToolchainAvailable()
{
    return !jitCompilerPath().empty();
}

std::string
emitKernelC(const LaneTape &tape)
{
    const std::size_t w = tape.width();
    std::string src;
    src.reserve(256 + tape.size() * 64);

    // Helpers mirror expr/builtins.cc line for line; the sat_ni scale
    // is the host-computed std::tanh(1.2) emitted exactly, so the
    // division matches the interpreter's cached divisor bit-for-bit
    // (a compile-time tanh() fold could round differently).
    src += "/* ark tier-5 kernel: width ";
    src += std::to_string(w);
    src += ", ";
    src += std::to_string(tape.size());
    src += " ops */\n";
    src += "#include <math.h>\n\n";
    src += "static double ark_sgn(double x)\n"
           "{ return x > 0.0 ? 1.0 : (x < 0.0 ? -1.0 : 0.0); }\n\n";
    src += "static double ark_sat(double x)\n"
           "{ return 0.5 * (fabs(x + 1.0) - fabs(x - 1.0)); }\n\n";
    src += "static double ark_sat_ni(double x)\n{ return tanh(1.2 * x)"
           " / " + hexLiteral(std::tanh(1.2)) + "; }\n\n";
    src += "static double ark_pulse(double t, double start, "
           "double width)\n"
           "{\n"
           "    if (width <= 0.0)\n"
           "        return 0.0;\n"
           "    double ramp = 0.05 * width;\n"
           "    double rel = t - start;\n"
           "    if (rel <= 0.0 || rel >= width)\n"
           "        return 0.0;\n"
           "    if (rel < ramp)\n"
           "        return rel / ramp;\n"
           "    if (rel > width - ramp)\n"
           "        return (width - rel) / ramp;\n"
           "    return 1.0;\n"
           "}\n\n";

    src += "void " + std::string(kKernelSymbol) +
           "(const double *restrict state, double t,\n"
           "                double *restrict out, "
           "const double *restrict consts)\n{\n";
    src += "    (void)state; (void)t; (void)consts;\n";

    // Lane-major: one outer loop over lanes, with the whole program —
    // one statement per tape op, in stream order — as its body over a
    // per-lane scalar register file. Lanes are independent, so per
    // lane this performs exactly the IEEE operation sequence
    // LaneTape::evalIntoT interprets (bit-identical outputs); keeping
    // the registers as loop-local scalars lets the compiler hold the
    // dataflow in CPU registers instead of round-tripping a
    // width-strided spill array between per-op loops.
    src += "    for (int l = 0; l < " + std::to_string(w) + "; ++l) {\n";
    const std::size_t regDoubles = std::max<std::size_t>(
        static_cast<std::size_t>(tape.numRegs()), 1);
    src += "        double r[" + std::to_string(regDoubles) + "];\n";

    auto slot = [&](const char *base, std::int32_t index) {
        return std::string(base) + "[" +
               std::to_string(static_cast<std::size_t>(index) * w) +
               " + l]";
    };
    auto reg = [&](std::int32_t index) {
        return "r[" + std::to_string(index) + "]";
    };
    for (const TapeOp &op : tape.ops()) {
        std::string stmt;
        switch (op.op) {
          case OpCode::Const:
            stmt = reg(op.dst) + " = " + slot("consts", op.a);
            break;
          case OpCode::LoadTime:
            stmt = reg(op.dst) + " = t";
            break;
          case OpCode::LoadState:
            stmt = reg(op.dst) + " = " + slot("state", op.a);
            break;
          case OpCode::Neg:
            stmt = reg(op.dst) + " = -" + reg(op.a);
            break;
          case OpCode::Add:
            stmt = reg(op.dst) + " = " + reg(op.a) + " + " + reg(op.b);
            break;
          case OpCode::Sub:
            stmt = reg(op.dst) + " = " + reg(op.a) + " - " + reg(op.b);
            break;
          case OpCode::Mul:
            stmt = reg(op.dst) + " = " + reg(op.a) + " * " + reg(op.b);
            break;
          case OpCode::Div:
            stmt = reg(op.dst) + " = " + reg(op.a) + " / " + reg(op.b);
            break;
          case OpCode::Lt:
            stmt = reg(op.dst) + " = " + reg(op.a) + " < " + reg(op.b) +
                   " ? 1.0 : 0.0";
            break;
          case OpCode::Le:
            stmt = reg(op.dst) + " = " + reg(op.a) + " <= " +
                   reg(op.b) + " ? 1.0 : 0.0";
            break;
          case OpCode::Gt:
            stmt = reg(op.dst) + " = " + reg(op.a) + " > " + reg(op.b) +
                   " ? 1.0 : 0.0";
            break;
          case OpCode::Ge:
            stmt = reg(op.dst) + " = " + reg(op.a) + " >= " +
                   reg(op.b) + " ? 1.0 : 0.0";
            break;
          case OpCode::EqOp:
            stmt = reg(op.dst) + " = " + reg(op.a) + " == " +
                   reg(op.b) + " ? 1.0 : 0.0";
            break;
          case OpCode::NeOp:
            stmt = reg(op.dst) + " = " + reg(op.a) + " != " +
                   reg(op.b) + " ? 1.0 : 0.0";
            break;
          case OpCode::AndOp:
            stmt = reg(op.dst) + " = (" + reg(op.a) + " != 0.0 && " +
                   reg(op.b) + " != 0.0) ? 1.0 : 0.0";
            break;
          case OpCode::OrOp:
            stmt = reg(op.dst) + " = (" + reg(op.a) + " != 0.0 || " +
                   reg(op.b) + " != 0.0) ? 1.0 : 0.0";
            break;
          case OpCode::NotOp:
            stmt = reg(op.dst) + " = " + reg(op.a) +
                   " == 0.0 ? 1.0 : 0.0";
            break;
          case OpCode::Select:
            stmt = reg(op.dst) + " = " + reg(op.c) + " != 0.0 ? " +
                   reg(op.a) + " : " + reg(op.b);
            break;
          case OpCode::FusedMulAdd:
            stmt = reg(op.dst) + " = fma(" + reg(op.a) + ", " +
                   reg(op.b) + ", " + reg(op.c) + ")";
            break;
          case OpCode::CallB: {
            std::vector<std::string> args;
            if (op.a >= 0)
                args.push_back(reg(op.a));
            if (op.b >= 0)
                args.push_back(reg(op.b));
            if (op.c >= 0)
                args.push_back(reg(op.c));
            stmt = reg(op.dst) + " = " + builtinCall(op.builtin, args);
            break;
          }
          case OpCode::WriteOutput:
            stmt = slot("out", op.dst) + " = " + reg(op.a);
            break;
        }
        src += "        " + stmt + ";\n";
    }
    src += "    }\n}\n";
    return src;
}

JitKernelPtr
compileKernel(const LaneTape &tape, const std::string &cacheKey)
{
    const std::string cacheDir =
        cacheKey.empty() ? std::string{} : diskCacheDir();
    const std::string cachedSo =
        cacheDir.empty() ? std::string{}
                         : cacheDir + "/" + cacheKey + ".so";

    // Warm start: a prior process already compiled this structure.
    if (!cachedSo.empty()) {
        std::error_code ec;
        if (fs::exists(cachedSo, ec)) {
            if (JitKernelPtr kernel = loadKernel(cachedSo, tape)) {
                diskHitsCounter().add();
                return kernel;
            }
            // Corrupt entry (torn write, foreign file): drop it and
            // fall through to a fresh compile. Stale-by-construction
            // is impossible — the emitter version is in the key.
            fs::remove(cachedSo, ec);
        }
    }

    // Deterministic fault injection: a forced compile failure proves
    // the interpreted-tier fallback, which no real host exercises
    // until its toolchain breaks.
    if (support::FaultInjector::shouldFire(
            support::FaultSite::JitCompile)) {
        failuresCounter().add();
        return nullptr;
    }

    const std::string &cc = jitCompilerPath();
    if (cc.empty())
        return nullptr;

    telemetry::ScopedSpan span("ark.compile.jit_compile",
                               static_cast<std::uint64_t>(tape.size()));
    telemetry::ScopedTimer timer(compileNsHistogram());

    support::TempDir work = support::TempDir::create("ark-jit-");
    if (!work.ok()) {
        failuresCounter().add();
        return nullptr;
    }
    const std::string src = work.path() + "/kernel.c";
    {
        std::ofstream out(src);
        if (!out) {
            failuresCounter().add();
            return nullptr;
        }
        out << emitKernelC(tape);
    }
    const std::string so = work.path() + "/kernel.so";
    const std::string qcc = shellQuote(cc);
    const std::string qso = shellQuote(so);
    const std::string qsrc = shellQuote(src);
    if (qcc.empty() || qso.empty() || qsrc.empty() ||
        !runCommand(qcc + " " + kCompileFlags + " -o " + qso + " " +
                    qsrc + " -lm")) {
        failuresCounter().add();
        return nullptr;
    }
    compilesCounter().add();

    // Publish into the disk cache via a unique sibling + rename so
    // concurrent processes never observe a half-written object; the
    // temp-dir object stays the load source if publication fails
    // (e.g. a read-only or cross-device cache path).
    std::string loadPath = so;
    if (!cachedSo.empty()) {
        static std::atomic<std::uint64_t> unique{0};
        const std::string staging =
            cacheDir + "/.tmp-" + std::to_string(::getpid()) + "-" +
            std::to_string(unique.fetch_add(1)) + "-" + cacheKey;
        std::error_code ec;
        fs::copy_file(so, staging,
                      fs::copy_options::overwrite_existing, ec);
        if (!ec) {
            fs::rename(staging, cachedSo, ec);
            if (!ec)
                loadPath = cachedSo;
            else
                fs::remove(staging, ec);
        }
        pruneDiskCache(cacheDir);
    }

    JitKernelPtr kernel = loadKernel(loadPath, tape);
    if (kernel == nullptr)
        failuresCounter().add();
    return kernel;
}

} // namespace ark::expr
