#ifndef ARK_EXPR_FUSEDTAPE_H
#define ARK_EXPR_FUSEDTAPE_H

/**
 * @file
 * Fused multi-output evaluation tape for whole-system ODE right-hand
 * sides.
 *
 * Where expr::Tape compiles one expression into one register program,
 * FusedTape lowers *all* RHS expressions of a dynamical system into a
 * single program that fills the whole dstate vector in one pass
 * (WriteOutput instructions). Lowering performs:
 *
 *  - global value numbering: structurally identical subexpressions
 *    across equations (Const, LoadTime, LoadState, every operator and
 *    builtin call) are computed once, so shared terms like TLN
 *    neighbor coupling and Kuramoto coupling sums stop being
 *    re-evaluated per equation. Expressions are hash-consed
 *    (expr/expr.h), so structurally equal inputs arrive as one
 *    pointer and memoized numbering hits before any structural
 *    comparison;
 *  - constant folding and exact algebraic identities (x+0, x*1, x/1)
 *    over the value graph;
 *  - liveness-based register allocation: SSA values are mapped onto a
 *    small reusable register file via last-use linear scan, keeping
 *    the working set cache-resident even for large systems.
 *
 * The instruction set, TapeOp encoding, and per-op semantics are
 * shared with expr::Tape (see tape_exec.h), so fused evaluation is
 * numerically identical to running the per-variable tapes (up to the
 * sign of zero under the x+0 identity).
 *
 * compile(outputs, fuseMulAdd = true) derives an FMA variant of
 * the program: a value-graph pass contracts each single-use Mul
 * feeding an Add into one FusedMulAdd instruction (executed with
 * std::fma — exactly one rounding for a*b+c, deterministic across
 * hosts). The pass runs before register allocation so the product's
 * operands stay live to the fused site. It is a guarded opt-in,
 * never applied by default: the default program keeps
 * one-IEEE-rounding-per-arithmetic-step semantics and therefore
 * stays bit-identical to the per-variable tapes and the interpreter;
 * the FMA variant agrees with them only to rounding (~1 ulp per
 * contracted pair) but shortens the stream by one instruction per
 * contraction. SimOptions::tapeFma selects the variant on the
 * simulation hot paths.
 *
 * FusedTape is the third of five execution tiers (see sim/sim.h for
 * the full ladder): tree interpreter -> per-variable Tape -> fused
 * whole-system tape -> lane-parallel LaneTape -> JIT native kernels
 * (expr/cjit.h, compiled from the LaneTape program). The compiled
 * program (ops()) is the exchange format between the upper tiers:
 * expr::LaneTape re-executes the exact instruction stream over a
 * structure-of-arrays block of instance states, with Const immediates
 * lifted into per-lane constant tables so ensembles that share the
 * program but not its parameters (e.g. per-chip mismatch weights)
 * still batch into one stream.
 */

#include <cstddef>
#include <vector>

#include "expr/expr.h"
#include "expr/tape.h"

namespace ark::expr {

/**
 * A compiled multi-output register program. One evalInto call fills
 * `out[0..numOutputs)` from the state vector and time.
 */
class FusedTape
{
  public:
    /**
     * Compiles the resolved expressions `outputs[k]` into one fused
     * program writing `out[k]` for every k. With `fuseMulAdd` set,
     * single-use Mul+Add value pairs contract into FusedMulAdd
     * instructions (see the file header for the rounding contract).
     * @throws ark::support::CompileError if any tree still contains
     *         Var, Attr, NodeVar, or lambda-callee nodes.
     */
    static FusedTape compile(const std::vector<ExprPtr> &outputs,
                             bool fuseMulAdd = false);

    /** Number of scratch registers evaluation requires. */
    int numRegs() const { return numRegs_; }

    /** Number of output slots (state variables of the system). */
    std::size_t numOutputs() const { return numOutputs_; }

    /** Number of instructions, including WriteOutput ops. */
    std::size_t size() const { return ops_.size(); }

    /**
     * Compute instructions eliminated by fusion relative to compiling
     * each output into its own Tape (CSE hits + folds); perf
     * instrumentation for tests and benchmarks.
     */
    std::size_t fusionSavings() const { return fusionSavings_; }

    /**
     * Mul+Add pairs contracted into FusedMulAdd instructions; 0
     * unless the program was compiled with fuseMulAdd. Every
     * contraction is a Mul whose value fed exactly one Add and
     * nothing else (not even a WriteOutput); the contracted program
     * is shorter by this many instructions and agrees with the plain
     * compile to rounding (the product is no longer rounded before
     * the add).
     */
    std::size_t fmaContractions() const { return fmaContractions_; }

    /** Largest state index referenced, or -1 when stateless. */
    int maxStateIndex() const { return maxStateIndex_; }

    /**
     * The compiled program. Register indices are final (post
     * allocation); Const instructions carry their value in `imm`.
     * LaneTape consumes this layout to batch the stream across
     * ensemble lanes.
     */
    const std::vector<TapeOp> &ops() const { return ops_; }

    /**
     * Evaluates the whole system: fills out[0..numOutputs). `regs`
     * must hold at least numRegs() doubles; only debug builds check.
     * `out` must not alias `state` or `regs`.
     */
    void evalInto(const double *state, double t, double *out,
                  double *regs) const;

    /** Convenience wrapper that owns its scratch (tests). */
    std::vector<double> evalAlloc(const std::vector<double> &state,
                                  double t) const;

  private:
    std::vector<TapeOp> ops_;
    int numRegs_ = 0;
    std::size_t numOutputs_ = 0;
    std::size_t fusionSavings_ = 0;
    std::size_t fmaContractions_ = 0;
    int maxStateIndex_ = -1;
};

} // namespace ark::expr

#endif // ARK_EXPR_FUSEDTAPE_H
