#ifndef ARK_EXPR_TAPE_EXEC_H
#define ARK_EXPR_TAPE_EXEC_H

/**
 * @file
 * Shared instruction executor for the tape interpreters.
 *
 * Tape (single-expression) and FusedTape (whole-system) run the same
 * instruction set; keeping the dispatch in one inline function
 * guarantees the two engines agree operation-for-operation, which the
 * fused-vs-interpreted equivalence property tests rely on.
 */

#include <cmath>

#include "expr/builtins.h"
#include "expr/tape.h"
#include "support/logging.h"

namespace ark::expr::detail {

/**
 * Executes one compute instruction against registers `r`, returning
 * the produced value. `WriteOutput` is not a compute instruction and
 * must be handled by the caller's loop.
 */
inline double
execCompute(const TapeOp &op, const double *state, double t,
            const double *r)
{
    switch (op.op) {
      case OpCode::Const:
        return op.imm;
      case OpCode::LoadTime:
        return t;
      case OpCode::LoadState:
        return state[op.a];
      case OpCode::Neg:
        return -r[op.a];
      case OpCode::Add:
        return r[op.a] + r[op.b];
      case OpCode::Sub:
        return r[op.a] - r[op.b];
      case OpCode::Mul:
        return r[op.a] * r[op.b];
      case OpCode::Div:
        return r[op.a] / r[op.b];
      case OpCode::Lt:
        return r[op.a] < r[op.b] ? 1.0 : 0.0;
      case OpCode::Le:
        return r[op.a] <= r[op.b] ? 1.0 : 0.0;
      case OpCode::Gt:
        return r[op.a] > r[op.b] ? 1.0 : 0.0;
      case OpCode::Ge:
        return r[op.a] >= r[op.b] ? 1.0 : 0.0;
      case OpCode::EqOp:
        return r[op.a] == r[op.b] ? 1.0 : 0.0;
      case OpCode::NeOp:
        return r[op.a] != r[op.b] ? 1.0 : 0.0;
      case OpCode::AndOp:
        return (r[op.a] != 0.0 && r[op.b] != 0.0) ? 1.0 : 0.0;
      case OpCode::OrOp:
        return (r[op.a] != 0.0 || r[op.b] != 0.0) ? 1.0 : 0.0;
      case OpCode::NotOp:
        return r[op.a] == 0.0 ? 1.0 : 0.0;
      case OpCode::Select:
        return r[op.c] != 0.0 ? r[op.a] : r[op.b];
      case OpCode::FusedMulAdd:
        // Exactly one rounding for a*b+c. std::fma, not a*b+c: the
        // latter would round twice on hosts without FMA contraction
        // and once on hosts with it, breaking cross-host determinism.
        return std::fma(r[op.a], r[op.b], r[op.c]);
      case OpCode::CallB: {
        double argv[3];
        int n = 0;
        if (op.a >= 0)
            argv[n++] = r[op.a];
        if (op.b >= 0)
            argv[n++] = r[op.b];
        if (op.c >= 0)
            argv[n++] = r[op.c];
        return evalBuiltin(op.builtin, argv, n);
      }
      case OpCode::WriteOutput:
        break;
    }
    support::panic("tape exec: bad opcode");
}

} // namespace ark::expr::detail

#endif // ARK_EXPR_TAPE_EXEC_H
