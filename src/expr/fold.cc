#include "expr/fold.h"

#include <cmath>

#include "expr/builtins.h"
#include "expr/eval.h"
#include "support/error.h"

namespace ark::expr {

bool
isRealLiteral(const ExprPtr &e, double v)
{
    return e->kind() == ExprKind::Literal &&
           e->literalValue().isNumeric() &&
           e->literalValue().asReal() == v;
}

namespace {

bool
isLiteral(const ExprPtr &e)
{
    return e->kind() == ExprKind::Literal;
}

/** Evaluates a closed expression (all children literal). */
ExprPtr
evalClosed(const ExprPtr &e)
{
    EvalContext ctx; // no name hooks: only closed expressions succeed
    return Expr::literal(eval(e, ctx));
}

} // namespace

ExprPtr
foldUnaryOf(UnOp op, const ExprPtr &a)
{
    if (isLiteral(a))
        return evalClosed(Expr::unary(op, a));
    // -(-x) == x
    if (op == UnOp::Neg && a->kind() == ExprKind::Unary &&
        a->unOp() == UnOp::Neg) {
        return a->operand();
    }
    return Expr::unary(op, a);
}

ExprPtr
foldBinaryOf(BinOp op, const ExprPtr &a, const ExprPtr &b)
{
    if (isLiteral(a) && isLiteral(b))
        return evalClosed(Expr::binary(op, a, b));

    switch (op) {
      case BinOp::Add:
        if (isRealLiteral(a, 0.0))
            return b;
        if (isRealLiteral(b, 0.0))
            return a;
        break;
      case BinOp::Sub:
        if (isRealLiteral(b, 0.0))
            return a;
        if (isRealLiteral(a, 0.0))
            return foldUnaryOf(UnOp::Neg, b);
        break;
      case BinOp::Mul:
        if (isRealLiteral(a, 0.0) || isRealLiteral(b, 0.0))
            return Expr::real(0.0);
        if (isRealLiteral(a, 1.0))
            return b;
        if (isRealLiteral(b, 1.0))
            return a;
        if (isRealLiteral(a, -1.0))
            return foldUnaryOf(UnOp::Neg, b);
        if (isRealLiteral(b, -1.0))
            return foldUnaryOf(UnOp::Neg, a);
        break;
      case BinOp::Div:
        if (isRealLiteral(a, 0.0))
            return Expr::real(0.0);
        if (isRealLiteral(b, 1.0))
            return a;
        break;
      case BinOp::Pow:
        if (isRealLiteral(b, 1.0))
            return a;
        if (isRealLiteral(b, 0.0))
            return Expr::real(1.0);
        break;
      case BinOp::And:
        if (isLiteral(a))
            return a->literalValue().asBool() ? b : Expr::boolean(false);
        if (isLiteral(b))
            return b->literalValue().asBool() ? a : Expr::boolean(false);
        break;
      case BinOp::Or:
        if (isLiteral(a))
            return a->literalValue().asBool() ? Expr::boolean(true) : b;
        if (isLiteral(b))
            return b->literalValue().asBool() ? Expr::boolean(true) : a;
        break;
      default:
        break;
    }
    return Expr::binary(op, a, b);
}

ExprPtr
foldCallOf(const std::string &callee, std::vector<ExprPtr> args)
{
    bool allLit = true;
    for (const auto &arg : args)
        allLit &= isLiteral(arg);
    // Only named builtins fold; lambda-callee calls are inlined earlier
    // by the compiler, and unknown names must keep failing at eval time.
    if (allLit && findBuiltin(callee))
        return evalClosed(Expr::call(callee, std::move(args)));
    return Expr::call(callee, std::move(args));
}

ExprPtr
foldIfOf(const ExprPtr &c, const ExprPtr &a, const ExprPtr &b)
{
    if (isLiteral(c))
        return c->literalValue().asBool() ? a : b;
    return Expr::ifThenElse(c, a, b);
}

ExprPtr
fold(const ExprPtr &e)
{
    switch (e->kind()) {
      case ExprKind::Literal:
      case ExprKind::Var:
      case ExprKind::Attr:
      case ExprKind::Time:
      case ExprKind::NodeVar:
      case ExprKind::StateVar:
        return e;
      case ExprKind::Unary:
        return foldUnaryOf(e->unOp(), fold(e->operand()));
      case ExprKind::Binary:
        return foldBinaryOf(e->binOp(), fold(e->lhs()), fold(e->rhs()));
      case ExprKind::Call: {
        std::vector<ExprPtr> args;
        args.reserve(e->args().size());
        for (const auto &arg : e->args())
            args.push_back(fold(arg));
        // Lambda-callee calls just fold their arguments.
        if (e->calleeExpr())
            return Expr::callExpr(e->calleeExpr(), std::move(args));
        return foldCallOf(e->callee(), std::move(args));
      }
      case ExprKind::If: {
        ExprPtr c = fold(e->cond());
        // Literal conditions prune: only the taken branch is folded.
        if (c->kind() == ExprKind::Literal) {
            return c->literalValue().asBool() ? fold(e->thenBranch())
                                              : fold(e->elseBranch());
        }
        return foldIfOf(c, fold(e->thenBranch()),
                        fold(e->elseBranch()));
      }
    }
    return e;
}

} // namespace ark::expr
