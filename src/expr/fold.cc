#include "expr/fold.h"

#include <cmath>

#include "expr/builtins.h"
#include "expr/eval.h"
#include "support/error.h"

namespace ark::expr {

bool
isRealLiteral(const ExprPtr &e, double v)
{
    return e->kind() == ExprKind::Literal &&
           e->literalValue().isNumeric() &&
           e->literalValue().asReal() == v;
}

namespace {

bool
isLiteral(const ExprPtr &e)
{
    return e->kind() == ExprKind::Literal;
}

/** Evaluates a closed expression (all children literal). */
ExprPtr
evalClosed(const ExprPtr &e)
{
    EvalContext ctx; // no name hooks: only closed expressions succeed
    return Expr::literal(eval(e, ctx));
}

ExprPtr
foldUnary(const ExprPtr &e)
{
    ExprPtr a = fold(e->operand());
    if (isLiteral(a))
        return evalClosed(Expr::unary(e->unOp(), a));
    // -(-x) == x
    if (e->unOp() == UnOp::Neg && a->kind() == ExprKind::Unary &&
        a->unOp() == UnOp::Neg) {
        return a->operand();
    }
    if (a == e->operand())
        return e;
    return Expr::unary(e->unOp(), a);
}

ExprPtr
foldBinary(const ExprPtr &e)
{
    ExprPtr a = fold(e->lhs());
    ExprPtr b = fold(e->rhs());
    BinOp op = e->binOp();

    if (isLiteral(a) && isLiteral(b))
        return evalClosed(Expr::binary(op, a, b));

    switch (op) {
      case BinOp::Add:
        if (isRealLiteral(a, 0.0))
            return b;
        if (isRealLiteral(b, 0.0))
            return a;
        break;
      case BinOp::Sub:
        if (isRealLiteral(b, 0.0))
            return a;
        if (isRealLiteral(a, 0.0))
            return fold(Expr::unary(UnOp::Neg, b));
        break;
      case BinOp::Mul:
        if (isRealLiteral(a, 0.0) || isRealLiteral(b, 0.0))
            return Expr::real(0.0);
        if (isRealLiteral(a, 1.0))
            return b;
        if (isRealLiteral(b, 1.0))
            return a;
        if (isRealLiteral(a, -1.0))
            return fold(Expr::unary(UnOp::Neg, b));
        if (isRealLiteral(b, -1.0))
            return fold(Expr::unary(UnOp::Neg, a));
        break;
      case BinOp::Div:
        if (isRealLiteral(a, 0.0))
            return Expr::real(0.0);
        if (isRealLiteral(b, 1.0))
            return a;
        break;
      case BinOp::Pow:
        if (isRealLiteral(b, 1.0))
            return a;
        if (isRealLiteral(b, 0.0))
            return Expr::real(1.0);
        break;
      case BinOp::And:
        if (isLiteral(a))
            return a->literalValue().asBool() ? b : Expr::boolean(false);
        if (isLiteral(b))
            return b->literalValue().asBool() ? a : Expr::boolean(false);
        break;
      case BinOp::Or:
        if (isLiteral(a))
            return a->literalValue().asBool() ? Expr::boolean(true) : b;
        if (isLiteral(b))
            return b->literalValue().asBool() ? Expr::boolean(true) : a;
        break;
      default:
        break;
    }
    if (a == e->lhs() && b == e->rhs())
        return e;
    return Expr::binary(op, a, b);
}

ExprPtr
foldCall(const ExprPtr &e)
{
    bool changed = false;
    bool allLit = true;
    std::vector<ExprPtr> args;
    args.reserve(e->args().size());
    for (const auto &arg : e->args()) {
        ExprPtr fa = fold(arg);
        changed |= (fa != arg);
        allLit &= isLiteral(fa);
        args.push_back(fa);
    }
    // Only named builtins fold; lambda-callee calls are inlined earlier
    // by the compiler, and unknown names must keep failing at eval time.
    if (!e->calleeExpr() && allLit && findBuiltin(e->callee()))
        return evalClosed(Expr::call(e->callee(), std::move(args)));
    if (!changed)
        return e;
    if (e->calleeExpr())
        return Expr::callExpr(e->calleeExpr(), std::move(args));
    return Expr::call(e->callee(), std::move(args));
}

ExprPtr
foldIf(const ExprPtr &e)
{
    ExprPtr c = fold(e->cond());
    if (isLiteral(c)) {
        return c->literalValue().asBool() ? fold(e->thenBranch())
                                          : fold(e->elseBranch());
    }
    ExprPtr a = fold(e->thenBranch());
    ExprPtr b = fold(e->elseBranch());
    if (c == e->cond() && a == e->thenBranch() && b == e->elseBranch())
        return e;
    return Expr::ifThenElse(c, a, b);
}

} // namespace

ExprPtr
fold(const ExprPtr &e)
{
    switch (e->kind()) {
      case ExprKind::Literal:
      case ExprKind::Var:
      case ExprKind::Attr:
      case ExprKind::Time:
      case ExprKind::NodeVar:
      case ExprKind::StateVar:
        return e;
      case ExprKind::Unary:
        return foldUnary(e);
      case ExprKind::Binary:
        return foldBinary(e);
      case ExprKind::Call:
        return foldCall(e);
      case ExprKind::If:
        return foldIf(e);
    }
    return e;
}

} // namespace ark::expr
