#include "expr/lanetape.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "expr/builtins.h"
#include "expr/fusedtape.h"
#include "support/faultinject.h"
#include "support/logging.h"

namespace ark::expr {

namespace {

std::size_t
widthFor(std::size_t lanes)
{
    support::panicIf(lanes == 0 || lanes > LaneTape::kMaxLanes,
                     "LaneTape: lane count out of range");
    if (lanes <= 1)
        return 1;
    if (lanes <= 2)
        return 2;
    if (lanes <= 4)
        return 4;
    return 8;
}

/** Structural equality of two instructions, ignoring Const payloads. */
bool
sameShape(const TapeOp &x, const TapeOp &y)
{
    if (x.op != y.op || x.dst != y.dst)
        return false;
    if (x.op == OpCode::Const)
        return true; // imm is the per-lane payload
    if (x.a != y.a || x.b != y.b || x.c != y.c)
        return false;
    if (x.op == OpCode::CallB && x.builtin != y.builtin)
        return false;
    return true;
}

} // namespace

bool
LaneTape::compatible(const FusedTape &a, const FusedTape &b)
{
    if (a.numOutputs() != b.numOutputs() || a.numRegs() != b.numRegs() ||
        a.size() != b.size())
        return false;
    const std::vector<TapeOp> &opsA = a.ops();
    const std::vector<TapeOp> &opsB = b.ops();
    for (std::size_t i = 0; i < opsA.size(); ++i)
        if (!sameShape(opsA[i], opsB[i]))
            return false;
    return true;
}

std::optional<LaneTape>
LaneTape::merge(const std::vector<const FusedTape *> &tapes)
{
    support::panicIf(tapes.empty() || tapes.size() > kMaxLanes,
                     "LaneTape::merge: lane count out of range");
    const FusedTape &leader = *tapes.front();
    for (const FusedTape *tape : tapes) {
        support::panicIf(tape == nullptr, "LaneTape::merge: null tape");
        if (!compatible(leader, *tape))
            return std::nullopt;
    }

    LaneTape lane;
    lane.lanes_ = tapes.size();
    lane.width_ = widthFor(tapes.size());
    lane.numRegs_ = leader.numRegs();
    lane.numOutputs_ = leader.numOutputs();
    lane.ops_ = leader.ops();

    // Lift Const immediates into the per-lane table; padding lanes
    // replicate lane 0 so their arithmetic stays finite.
    std::size_t slots = 0;
    for (const TapeOp &op : lane.ops_)
        if (op.op == OpCode::Const)
            ++slots;
    lane.constants_.resize(slots * lane.width_);
    std::size_t slot = 0;
    for (std::size_t i = 0; i < lane.ops_.size(); ++i) {
        if (lane.ops_[i].op != OpCode::Const)
            continue;
        double *row = lane.constants_.data() + slot * lane.width_;
        for (std::size_t l = 0; l < lane.width_; ++l) {
            const FusedTape &src =
                *tapes[l < lane.lanes_ ? l : 0];
            row[l] = src.ops()[i].imm;
        }
        lane.ops_[i].a = static_cast<std::int32_t>(slot);
        ++slot;
    }
    return lane;
}

LaneTape
LaneTape::broadcast(const FusedTape &tape, std::size_t lanes)
{
    std::vector<const FusedTape *> same(lanes, &tape);
    std::optional<LaneTape> merged = merge(same);
    // A tape is always structurally compatible with itself.
    support::panicIf(!merged.has_value(),
                     "LaneTape::broadcast: self-merge failed");
    return *std::move(merged);
}

template <int W>
void
LaneTape::evalIntoT(const double *state, double t, double *out,
                    double *regs) const
{
    const double *ctab = constants_.data();
    for (const TapeOp &op : ops_) {
        if (op.op == OpCode::WriteOutput) {
            double *o = out + static_cast<std::size_t>(op.dst) * W;
            const double *s = regs + static_cast<std::size_t>(op.a) * W;
            for (int l = 0; l < W; ++l)
                o[l] = s[l];
            continue;
        }
        double *d = regs + static_cast<std::size_t>(op.dst) * W;
        switch (op.op) {
          case OpCode::Const: {
            const double *s = ctab + static_cast<std::size_t>(op.a) * W;
            for (int l = 0; l < W; ++l)
                d[l] = s[l];
            break;
          }
          case OpCode::LoadTime:
            for (int l = 0; l < W; ++l)
                d[l] = t;
            break;
          case OpCode::LoadState: {
            const double *s = state + static_cast<std::size_t>(op.a) * W;
            for (int l = 0; l < W; ++l)
                d[l] = s[l];
            break;
          }
          case OpCode::Neg: {
            const double *a = regs + static_cast<std::size_t>(op.a) * W;
            for (int l = 0; l < W; ++l)
                d[l] = -a[l];
            break;
          }
          case OpCode::Add: {
            const double *a = regs + static_cast<std::size_t>(op.a) * W;
            const double *b = regs + static_cast<std::size_t>(op.b) * W;
            for (int l = 0; l < W; ++l)
                d[l] = a[l] + b[l];
            break;
          }
          case OpCode::Sub: {
            const double *a = regs + static_cast<std::size_t>(op.a) * W;
            const double *b = regs + static_cast<std::size_t>(op.b) * W;
            for (int l = 0; l < W; ++l)
                d[l] = a[l] - b[l];
            break;
          }
          case OpCode::Mul: {
            const double *a = regs + static_cast<std::size_t>(op.a) * W;
            const double *b = regs + static_cast<std::size_t>(op.b) * W;
            for (int l = 0; l < W; ++l)
                d[l] = a[l] * b[l];
            break;
          }
          case OpCode::Div: {
            const double *a = regs + static_cast<std::size_t>(op.a) * W;
            const double *b = regs + static_cast<std::size_t>(op.b) * W;
            for (int l = 0; l < W; ++l)
                d[l] = a[l] / b[l];
            break;
          }
          case OpCode::Lt: {
            const double *a = regs + static_cast<std::size_t>(op.a) * W;
            const double *b = regs + static_cast<std::size_t>(op.b) * W;
            for (int l = 0; l < W; ++l)
                d[l] = a[l] < b[l] ? 1.0 : 0.0;
            break;
          }
          case OpCode::Le: {
            const double *a = regs + static_cast<std::size_t>(op.a) * W;
            const double *b = regs + static_cast<std::size_t>(op.b) * W;
            for (int l = 0; l < W; ++l)
                d[l] = a[l] <= b[l] ? 1.0 : 0.0;
            break;
          }
          case OpCode::Gt: {
            const double *a = regs + static_cast<std::size_t>(op.a) * W;
            const double *b = regs + static_cast<std::size_t>(op.b) * W;
            for (int l = 0; l < W; ++l)
                d[l] = a[l] > b[l] ? 1.0 : 0.0;
            break;
          }
          case OpCode::Ge: {
            const double *a = regs + static_cast<std::size_t>(op.a) * W;
            const double *b = regs + static_cast<std::size_t>(op.b) * W;
            for (int l = 0; l < W; ++l)
                d[l] = a[l] >= b[l] ? 1.0 : 0.0;
            break;
          }
          case OpCode::EqOp: {
            const double *a = regs + static_cast<std::size_t>(op.a) * W;
            const double *b = regs + static_cast<std::size_t>(op.b) * W;
            for (int l = 0; l < W; ++l)
                d[l] = a[l] == b[l] ? 1.0 : 0.0;
            break;
          }
          case OpCode::NeOp: {
            const double *a = regs + static_cast<std::size_t>(op.a) * W;
            const double *b = regs + static_cast<std::size_t>(op.b) * W;
            for (int l = 0; l < W; ++l)
                d[l] = a[l] != b[l] ? 1.0 : 0.0;
            break;
          }
          case OpCode::AndOp: {
            const double *a = regs + static_cast<std::size_t>(op.a) * W;
            const double *b = regs + static_cast<std::size_t>(op.b) * W;
            for (int l = 0; l < W; ++l)
                d[l] = (a[l] != 0.0 && b[l] != 0.0) ? 1.0 : 0.0;
            break;
          }
          case OpCode::OrOp: {
            const double *a = regs + static_cast<std::size_t>(op.a) * W;
            const double *b = regs + static_cast<std::size_t>(op.b) * W;
            for (int l = 0; l < W; ++l)
                d[l] = (a[l] != 0.0 || b[l] != 0.0) ? 1.0 : 0.0;
            break;
          }
          case OpCode::NotOp: {
            const double *a = regs + static_cast<std::size_t>(op.a) * W;
            for (int l = 0; l < W; ++l)
                d[l] = a[l] == 0.0 ? 1.0 : 0.0;
            break;
          }
          case OpCode::Select: {
            const double *a = regs + static_cast<std::size_t>(op.a) * W;
            const double *b = regs + static_cast<std::size_t>(op.b) * W;
            const double *c = regs + static_cast<std::size_t>(op.c) * W;
            for (int l = 0; l < W; ++l)
                d[l] = c[l] != 0.0 ? a[l] : b[l];
            break;
          }
          case OpCode::FusedMulAdd: {
            // Same std::fma the scalar executor uses: one rounding per
            // lane, bit-identical to scalar FusedTape evaluation. On
            // FMA hosts (ARK_ENABLE_NATIVE) this lowers to the fused
            // instruction; baseline ISAs call libm's soft-fma.
            const double *a = regs + static_cast<std::size_t>(op.a) * W;
            const double *b = regs + static_cast<std::size_t>(op.b) * W;
            const double *c = regs + static_cast<std::size_t>(op.c) * W;
            for (int l = 0; l < W; ++l)
                d[l] = std::fma(a[l], b[l], c[l]);
            break;
          }
          case OpCode::CallB: {
            // Builtins stay scalar per lane (libm calls); the lane win
            // here is only the amortized dispatch.
            for (int l = 0; l < W; ++l) {
                double argv[3];
                int n = 0;
                if (op.a >= 0)
                    argv[n++] = regs[static_cast<std::size_t>(op.a) * W +
                                     static_cast<std::size_t>(l)];
                if (op.b >= 0)
                    argv[n++] = regs[static_cast<std::size_t>(op.b) * W +
                                     static_cast<std::size_t>(l)];
                if (op.c >= 0)
                    argv[n++] = regs[static_cast<std::size_t>(op.c) * W +
                                     static_cast<std::size_t>(l)];
                d[l] = evalBuiltin(op.builtin, argv, n);
            }
            break;
          }
          case OpCode::WriteOutput:
            break; // handled above
        }
    }
}

void
LaneTape::evalInto(const double *state, double t, double *out,
                   double *regs) const
{
    assert(out != nullptr || numOutputs_ == 0);
    assert(regs != nullptr || numRegs_ == 0);
    switch (width_) {
      case 1:
        evalIntoT<1>(state, t, out, regs);
        break;
      case 2:
        evalIntoT<2>(state, t, out, regs);
        break;
      case 4:
        evalIntoT<4>(state, t, out, regs);
        break;
      case 8:
        evalIntoT<8>(state, t, out, regs);
        break;
      default:
        support::panic("LaneTape: bad width");
    }
    // Deterministic fault injection: poison output 0 of lane 0 (the
    // lane-minor layout puts it at out[0]) — a single-lane numerical
    // fault, so tests can watch one lane retire while its block-mates
    // keep integrating. Zero cost disarmed.
    if (support::FaultInjector::shouldFire(support::FaultSite::TapeNan) &&
        numOutputs_ > 0)
        out[0] = std::numeric_limits<double>::quiet_NaN();
}

} // namespace ark::expr
