#ifndef ARK_EXPR_VALUE_H
#define ARK_EXPR_VALUE_H

/**
 * @file
 * Runtime values for the Ark expression language.
 *
 * A Value is a real, a (bounded) integer, a boolean, or a lambda
 * (lambd(v*): e). Attributes, initial values, and function arguments
 * all carry Values; production-rule rewriting substitutes them into
 * dynamics expressions.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ark::expr {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/** A lambda literal: named parameters and a body expression. */
struct Lambda
{
    std::vector<std::string> params;
    ExprPtr body;
};

/** Discriminates Value alternatives. */
enum class ValueKind : std::uint8_t { Real, Int, Bool, Function };

/** Human-readable kind name ("real", "int", ...). */
const char *valueKindName(ValueKind kind);

/**
 * Tagged union of the Ark runtime value alternatives.
 *
 * Accessors throw ark::support::TypeError on kind mismatch, except
 * asReal(), which transparently widens Int to Real (the only implicit
 * conversion the language performs).
 */
class Value
{
  public:
    /** Default-constructs real 0.0. */
    Value();

    static Value real(double v);
    static Value integer(std::int64_t v);
    static Value boolean(bool v);
    static Value function(Lambda lambda);

    ValueKind kind() const { return kind_; }

    bool isReal() const { return kind_ == ValueKind::Real; }
    bool isInt() const { return kind_ == ValueKind::Int; }
    bool isBool() const { return kind_ == ValueKind::Bool; }
    bool isFunction() const { return kind_ == ValueKind::Function; }

    /** True for Real or Int. */
    bool isNumeric() const { return isReal() || isInt(); }

    /** Real view; widens Int. @throws TypeError otherwise. */
    double asReal() const;

    /** Int view. @throws TypeError unless kind is Int. */
    std::int64_t asInt() const;

    /** Bool view. @throws TypeError unless kind is Bool. */
    bool asBool() const;

    /** Lambda view. @throws TypeError unless kind is Function. */
    const Lambda &asFunction() const;

    /** Renders literals like "3.5", "7", "true", "lambd(t): ...". */
    std::string str() const;

    /**
     * Structural equality; lambdas compare by printed body (adequate
     * for tests, not used in semantics).
     */
    bool operator==(const Value &other) const;

  private:
    ValueKind kind_;
    double real_ = 0.0;
    std::int64_t int_ = 0;
    bool bool_ = false;
    std::shared_ptr<const Lambda> fn_;
};

} // namespace ark::expr

#endif // ARK_EXPR_VALUE_H
