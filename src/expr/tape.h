#ifndef ARK_EXPR_TAPE_H
#define ARK_EXPR_TAPE_H

/**
 * @file
 * Flat evaluation tapes for ODE right-hand sides.
 *
 * The compiler lowers each fully-resolved dynamics expression (only
 * literals, `time`, state-vector slots, operators, and builtins remain)
 * into a postorder register program. The simulator evaluates tapes with
 * zero allocation per step; benchmarks show an order-of-magnitude win
 * over tree walking (see bench/perf_expr).
 *
 * Tape compiles one expression into one program; the hot simulation
 * path uses expr::FusedTape (fusedtape.h), which lowers a whole
 * system's RHS vector into a single program with cross-equation CSE
 * and fills every dstate slot in one pass. Both engines share this
 * instruction set (TapeOp/OpCode) and the executor in tape_exec.h.
 */

#include <cstdint>
#include <vector>

#include "expr/builtins.h"
#include "expr/expr.h"

namespace ark::expr {

/** Tape instruction opcodes. */
enum class OpCode : std::uint8_t {
    Const,     ///< dst = imm
    LoadTime,  ///< dst = t
    LoadState, ///< dst = state[a]
    Neg,       ///< dst = -r[a]
    Add, Sub, Mul, Div,           ///< dst = r[a] op r[b]
    Lt, Le, Gt, Ge, EqOp, NeOp,   ///< dst = r[a] cmp r[b] ? 1 : 0
    AndOp, OrOp,                  ///< dst = bool(r[a]) op bool(r[b])
    NotOp,     ///< dst = r[a] == 0 ? 1 : 0
    Select,    ///< dst = r[c] != 0 ? r[a] : r[b]
    CallB,     ///< dst = builtin(r[a], r[b], r[c])
    WriteOutput, ///< out[dst] = r[a] (FusedTape only)
    /**
     * dst = fma(r[a], r[b], r[c]) — the product is not rounded before
     * the add (one rounding for the whole instruction, via std::fma,
     * so the result is deterministic across hosts and compilers).
     * Never emitted by the base compilers; produced only by the
     * guarded Mul+Add contraction in FusedTape::compile(outputs,
     * fuseMulAdd=true), so default-compiled tape streams never
     * contain it.
     */
    FusedMulAdd,
};

/** One tape instruction; unused operand slots hold -1. */
struct TapeOp
{
    OpCode op;
    Builtin builtin; // valid when op == CallB
    std::int32_t dst;
    std::int32_t a;
    std::int32_t b;
    std::int32_t c;
    double imm;
};

/**
 * A compiled expression: a register program returning one double.
 */
class Tape
{
  public:
    /**
     * Compiles a resolved expression.
     * @throws ark::support::CompileError if the tree still contains
     *         Var, Attr, NodeVar, or lambda-callee nodes.
     */
    static Tape compile(const ExprPtr &e);

    /** Number of scratch registers evaluation requires. */
    int numRegs() const { return numRegs_; }

    /** Number of instructions (for tests and benchmarks). */
    std::size_t size() const { return ops_.size(); }

    /**
     * Evaluates against a state vector and time. `regs` is caller
     * scratch, resized as needed (pass the same buffer across calls to
     * avoid reallocation).
     */
    double eval(const double *state, double t,
                std::vector<double> &regs) const;

    /**
     * Hot-path evaluation against caller scratch of at least
     * numRegs() doubles; no size check beyond a debug assertion.
     * OdeSystem sizes one scratch block per system and reuses it for
     * every call, keeping the resize branch out of the inner loop.
     */
    double eval(const double *state, double t, double *regs) const;

    /** Convenience wrapper that owns its scratch (slower; tests). */
    double evalAlloc(const std::vector<double> &state, double t) const;

    /** Largest state index referenced, or -1 when stateless. */
    int maxStateIndex() const { return maxStateIndex_; }

  private:
    std::vector<TapeOp> ops_;
    int numRegs_ = 0;
    int maxStateIndex_ = -1;

    int emit(const ExprPtr &e);
    int newReg();
    int addOp(TapeOp op);
};

} // namespace ark::expr

#endif // ARK_EXPR_TAPE_H
