#include "expr/fusedtape.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "expr/tape_exec.h"
#include "support/error.h"
#include "support/faultinject.h"
#include "support/logging.h"

namespace ark::expr {

using support::cat;
using support::CompileError;

namespace {

/** Structural identity of an SSA value (operands are value ids). */
struct ValKey
{
    OpCode op;
    Builtin builtin;
    int a, b, c;
    std::uint64_t immBits; ///< Const payload, bit-exact (-0.0 != 0.0).

    bool operator==(const ValKey &) const = default;
};

struct ValKeyHash
{
    std::size_t
    operator()(const ValKey &k) const
    {
        std::uint64_t h = 1469598103934665603ull;
        auto mix = [&h](std::uint64_t v) {
            h ^= v;
            h *= 1099511628211ull;
        };
        mix(static_cast<std::uint64_t>(k.op));
        mix(static_cast<std::uint64_t>(k.builtin));
        mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(k.a)));
        mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(k.b)));
        mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(k.c)));
        mix(k.immBits);
        return static_cast<std::size_t>(h);
    }
};

OpCode
binOpCode(BinOp op)
{
    switch (op) {
      case BinOp::Add: return OpCode::Add;
      case BinOp::Sub: return OpCode::Sub;
      case BinOp::Mul: return OpCode::Mul;
      case BinOp::Div: return OpCode::Div;
      case BinOp::Lt: return OpCode::Lt;
      case BinOp::Le: return OpCode::Le;
      case BinOp::Gt: return OpCode::Gt;
      case BinOp::Ge: return OpCode::Ge;
      case BinOp::Eq: return OpCode::EqOp;
      case BinOp::Ne: return OpCode::NeOp;
      case BinOp::And: return OpCode::AndOp;
      case BinOp::Or: return OpCode::OrOp;
      case BinOp::Pow:
        break; // lowered to CallB(Pow)
    }
    support::panic("binOpCode: unhandled operator");
}

bool
isCommutative(OpCode op)
{
    return op == OpCode::Add || op == OpCode::Mul ||
           op == OpCode::EqOp || op == OpCode::NeOp ||
           op == OpCode::AndOp || op == OpCode::OrOp;
}

/**
 * Builds the value-numbered SSA graph for all outputs, then schedules
 * it into a register program with liveness-based register reuse.
 */
class Fuser
{
  public:
    /** One SSA value; a/b/c reference earlier value ids. */
    struct Val
    {
        OpCode op;
        Builtin builtin;
        int a, b, c;   ///< Value-id operands (LoadState: a = state slot).
        double imm;
    };

    std::vector<Val> vals;
    std::vector<int> outputVals; ///< Value id producing each output.
    std::size_t hits = 0;        ///< CSE hits + folds + identities.
    int maxStateIndex = -1;

    int
    lower(const ExprPtr &e)
    {
        auto memoIt = memo_.find(e.get());
        if (memoIt != memo_.end()) {
            ++hits;
            return memoIt->second;
        }
        int id = lowerUncached(e);
        memo_.emplace(e.get(), id);
        return id;
    }

  private:
    std::unordered_map<const Expr *, int> memo_;
    std::unordered_map<ValKey, int, ValKeyHash> interned_;

    bool
    isConst(int id, double *value = nullptr) const
    {
        const Val &v = vals[static_cast<std::size_t>(id)];
        if (v.op != OpCode::Const)
            return false;
        if (value)
            *value = v.imm;
        return true;
    }

    /** Interns a value, folding constants and exact identities. */
    int
    intern(OpCode op, Builtin builtin, int a, int b, int c, double imm)
    {
        if (isCommutative(op) && a > b)
            std::swap(a, b);

        if (int folded = tryFold(op, builtin, a, b, c); folded >= 0) {
            ++hits;
            return folded;
        }

        ValKey key{op, builtin, a, b, c,
                   op == OpCode::Const ? std::bit_cast<std::uint64_t>(imm)
                                       : 0};
        auto it = interned_.find(key);
        if (it != interned_.end()) {
            ++hits;
            return it->second;
        }
        int id = static_cast<int>(vals.size());
        vals.push_back(Val{op, builtin, a, b, c, imm});
        interned_.emplace(key, id);
        return id;
    }

    /**
     * Returns the id of a replacement value when the operation folds
     * to a constant or an existing operand, -1 otherwise. Only exact
     * rewrites are applied; x*0 is kept because it differs on
     * non-finite x, and x+0 only rewrites when x's sign of zero
     * cannot be observed (the operand is a non-Const value the
     * interpreter would compute identically).
     */
    int
    tryFold(OpCode op, Builtin builtin, int a, int b, int c)
    {
        switch (op) {
          case OpCode::Const:
          case OpCode::LoadTime:
          case OpCode::LoadState:
          case OpCode::WriteOutput:
            return -1;
          default:
            break;
        }

        // Identity rewrites on one constant operand.
        double cv;
        if (op == OpCode::Add && isConst(b, &cv) && cv == 0.0)
            return a; // x + 0 (or x + -0): exact except -0.0 + 0.0
        if (op == OpCode::Add && isConst(a, &cv) && cv == 0.0)
            return b;
        if (op == OpCode::Sub && isConst(b, &cv) && cv == 0.0 &&
            std::bit_cast<std::uint64_t>(cv) == 0)
            return a; // x - (+0) is exact for every x
        if (op == OpCode::Mul && isConst(b, &cv) && cv == 1.0)
            return a;
        if (op == OpCode::Mul && isConst(a, &cv) && cv == 1.0)
            return b;
        if (op == OpCode::Div && isConst(b, &cv) && cv == 1.0)
            return a;

        // Full constant folding: every operand is a literal.
        double operands[3];
        TapeOp probe{op, builtin, 0, -1, -1, -1, 0.0};
        int n = 0;
        for (int src : {a, b, c}) {
            if (src < 0)
                continue;
            if (!isConst(src, &operands[n]))
                return -1;
            ++n;
        }
        if (n > 0)
            probe.a = 0;
        if (n > 1)
            probe.b = 1;
        if (n > 2)
            probe.c = 2;
        // Select reads (a, b, c) positionally rather than packed.
        if (op == OpCode::Select)
            probe = TapeOp{op, builtin, 0, 0, 1, 2, 0.0};
        double value = detail::execCompute(probe, nullptr, 0.0, operands);
        return intern(OpCode::Const, Builtin::Sin, -1, -1, -1, value);
    }

    int
    lowerUncached(const ExprPtr &e)
    {
        switch (e->kind()) {
          case ExprKind::Literal: {
            const Value &v = e->literalValue();
            double imm;
            if (v.isBool())
                imm = v.asBool() ? 1.0 : 0.0;
            else
                imm = v.asReal(); // throws TypeError for lambdas
            return intern(OpCode::Const, Builtin::Sin, -1, -1, -1, imm);
          }
          case ExprKind::Time:
            return intern(OpCode::LoadTime, Builtin::Sin, -1, -1, -1,
                          0.0);
          case ExprKind::StateVar:
            maxStateIndex = std::max(maxStateIndex, e->stateIndex());
            return intern(OpCode::LoadState, Builtin::Sin,
                          e->stateIndex(), -1, -1, 0.0);
          case ExprKind::Unary: {
            int a = lower(e->operand());
            OpCode op = e->unOp() == UnOp::Neg ? OpCode::Neg
                                               : OpCode::NotOp;
            return intern(op, Builtin::Sin, a, -1, -1, 0.0);
          }
          case ExprKind::Binary: {
            int a = lower(e->lhs());
            int b = lower(e->rhs());
            if (e->binOp() == BinOp::Pow)
                return intern(OpCode::CallB, Builtin::Pow, a, b, -1,
                              0.0);
            return intern(binOpCode(e->binOp()), Builtin::Sin, a, b, -1,
                          0.0);
          }
          case ExprKind::Call: {
            if (e->calleeExpr()) {
                throw CompileError(
                    cat("cannot compile unresolved lambda call ",
                        e->str(), " to a tape"));
            }
            const BuiltinInfo *info = findBuiltin(e->callee());
            if (!info) {
                throw CompileError(
                    cat("cannot compile unknown function '", e->callee(),
                        "' to a tape"));
            }
            if (static_cast<int>(e->args().size()) != info->arity) {
                throw CompileError(
                    cat("function '", e->callee(),
                        "' arity mismatch in tape compile"));
            }
            int ids[3] = {-1, -1, -1};
            for (std::size_t i = 0; i < e->args().size(); ++i)
                ids[i] = lower(e->args()[i]);
            return intern(OpCode::CallB, info->id, ids[0], ids[1],
                          ids[2], 0.0);
          }
          case ExprKind::If: {
            int c = lower(e->cond());
            int a = lower(e->thenBranch());
            int b = lower(e->elseBranch());
            return intern(OpCode::Select, Builtin::Sin, a, b, c, 0.0);
          }
          case ExprKind::Var:
            throw CompileError(cat("cannot compile free variable '",
                                   e->varName(), "' to a tape"));
          case ExprKind::Attr:
            throw CompileError(cat("cannot compile unresolved attribute '",
                                   e->attrBase(), ".", e->attrName(),
                                   "' to a tape"));
          case ExprKind::NodeVar:
            throw CompileError(cat("cannot compile unresolved var(",
                                   e->nodeName(), ") to a tape"));
        }
        throw CompileError("unreachable expression kind in tape compile");
    }
};

} // namespace

FusedTape
FusedTape::compile(const std::vector<ExprPtr> &outputs, bool fuseMulAdd)
{
    Fuser fuser;
    fuser.outputVals.reserve(outputs.size());
    for (const ExprPtr &e : outputs)
        fuser.outputVals.push_back(fuser.lower(e));

    // Guarded Mul+Add contraction, on the value graph (pre-regalloc,
    // so the allocator naturally keeps the product's operand values
    // live to the FusedMulAdd site): every Mul consumed by exactly
    // one Add — and nothing else, outputs included — merges with that
    // Add into one FusedMulAdd(a, b, addend). The orphaned Mul is
    // dropped by the reachability pass below. Single-use only: a
    // shared product would otherwise be re-evaluated (with a
    // different rounding) per consumer.
    std::size_t fmaContractions = 0;
    if (fuseMulAdd) {
        std::vector<int> useCount(fuser.vals.size(), 0);
        for (const Fuser::Val &v : fuser.vals) {
            if (v.op == OpCode::Const || v.op == OpCode::LoadTime ||
                v.op == OpCode::LoadState)
                continue; // a/b/c are not value ids for leaf ops
            for (int operand : {v.a, v.b, v.c})
                if (operand >= 0)
                    ++useCount[static_cast<std::size_t>(operand)];
        }
        for (int out : fuser.outputVals)
            ++useCount[static_cast<std::size_t>(out)];
        for (Fuser::Val &v : fuser.vals) {
            if (v.op != OpCode::Add)
                continue;
            for (int side = 0; side < 2; ++side) {
                int x = side == 0 ? v.a : v.b;
                int addend = side == 0 ? v.b : v.a;
                const Fuser::Val &mul =
                    fuser.vals[static_cast<std::size_t>(x)];
                if (mul.op != OpCode::Mul ||
                    useCount[static_cast<std::size_t>(x)] != 1)
                    continue;
                v = Fuser::Val{OpCode::FusedMulAdd, Builtin::Sin,
                               mul.a, mul.b, addend, 0.0};
                ++fmaContractions;
                break;
            }
        }
    }

    const auto numVals = fuser.vals.size();

    // Reachability: folding can orphan already-interned operand values;
    // only live values get scheduled.
    std::vector<char> live(numVals, 0);
    {
        std::vector<int> stack(fuser.outputVals.begin(),
                               fuser.outputVals.end());
        while (!stack.empty()) {
            int id = stack.back();
            stack.pop_back();
            auto idx = static_cast<std::size_t>(id);
            if (live[idx])
                continue;
            live[idx] = 1;
            const Fuser::Val &v = fuser.vals[idx];
            if (v.op == OpCode::Const || v.op == OpCode::LoadTime ||
                v.op == OpCode::LoadState)
                continue;
            for (int operand : {v.a, v.b, v.c})
                if (operand >= 0)
                    stack.push_back(operand);
        }
    }

    // Schedule: values in dependency (id) order; each output is
    // written as soon as its value is computed, so its register can be
    // retired immediately when nothing else reads it.
    std::vector<std::vector<int>> outputsOfVal(numVals);
    for (std::size_t k = 0; k < fuser.outputVals.size(); ++k) {
        outputsOfVal[static_cast<std::size_t>(fuser.outputVals[k])]
            .push_back(static_cast<int>(k));
    }

    // Scheduled program with value ids still in the operand slots.
    std::vector<TapeOp> scheduled;
    scheduled.reserve(numVals + fuser.outputVals.size());
    for (std::size_t id = 0; id < numVals; ++id) {
        if (!live[id])
            continue;
        const Fuser::Val &v = fuser.vals[id];
        scheduled.push_back(TapeOp{v.op, v.builtin,
                                   static_cast<std::int32_t>(id), v.a,
                                   v.b, v.c, v.imm});
        for (int slot : outputsOfVal[id]) {
            scheduled.push_back(TapeOp{OpCode::WriteOutput, Builtin::Sin,
                                       slot, static_cast<std::int32_t>(id),
                                       -1, -1, 0.0});
        }
    }

    // Liveness: last instruction index reading each value.
    std::vector<std::ptrdiff_t> lastUse(numVals, -1);
    for (std::size_t i = 0; i < scheduled.size(); ++i) {
        const TapeOp &op = scheduled[i];
        bool loads = op.op == OpCode::Const || op.op == OpCode::LoadTime ||
                     op.op == OpCode::LoadState;
        if (op.op == OpCode::WriteOutput) {
            lastUse[static_cast<std::size_t>(op.a)] =
                static_cast<std::ptrdiff_t>(i);
        } else if (!loads) {
            for (std::int32_t operand : {op.a, op.b, op.c})
                if (operand >= 0)
                    lastUse[static_cast<std::size_t>(operand)] =
                        static_cast<std::ptrdiff_t>(i);
        }
    }

    // Linear-scan register allocation over the schedule.
    FusedTape fused;
    fused.numOutputs_ = outputs.size();
    fused.maxStateIndex_ = fuser.maxStateIndex;
    fused.ops_.reserve(scheduled.size());
    std::vector<int> regOfVal(numVals, -1);
    // FIFO recycling: freed registers go to the back of the queue and
    // the oldest free register is reused first. LIFO reuse puts the
    // same few registers back-to-back in consecutive instructions,
    // manufacturing false dependencies that serialize the evaluation
    // loop on out-of-order cores; FIFO maximizes reuse distance at
    // identical register count.
    std::vector<int> freeRegs;
    std::size_t freeHead = 0;
    int nextReg = 0;

    auto release = [&](std::int32_t valId, std::size_t pos) {
        if (valId >= 0 &&
            lastUse[static_cast<std::size_t>(valId)] ==
                static_cast<std::ptrdiff_t>(pos))
            freeRegs.push_back(regOfVal[static_cast<std::size_t>(valId)]);
    };

    for (std::size_t i = 0; i < scheduled.size(); ++i) {
        TapeOp op = scheduled[i];
        if (op.op == OpCode::WriteOutput) {
            std::int32_t srcVal = op.a;
            op.a = regOfVal[static_cast<std::size_t>(srcVal)];
            release(srcVal, i);
            fused.ops_.push_back(op);
            continue;
        }
        std::int32_t dstVal = op.dst;
        bool loads = op.op == OpCode::Const || op.op == OpCode::LoadTime ||
                     op.op == OpCode::LoadState;
        if (!loads) {
            std::int32_t va = op.a, vb = op.b, vc = op.c;
            if (va >= 0)
                op.a = regOfVal[static_cast<std::size_t>(va)];
            if (vb >= 0)
                op.b = regOfVal[static_cast<std::size_t>(vb)];
            if (vc >= 0)
                op.c = regOfVal[static_cast<std::size_t>(vc)];
            // Free operand registers first so the destination can
            // reuse one in place (execCompute reads before the write).
            release(va, i);
            if (vb != va)
                release(vb, i);
            if (vc != va && vc != vb)
                release(vc, i);
        }
        int reg;
        if (freeHead < freeRegs.size()) {
            reg = freeRegs[freeHead++];
        } else {
            reg = nextReg++;
        }
        regOfVal[static_cast<std::size_t>(dstVal)] = reg;
        op.dst = reg;
        // A value nothing reads (an output written and retired by the
        // WriteOutput that follows) keeps its register until then.
        fused.ops_.push_back(op);
        if (lastUse[static_cast<std::size_t>(dstVal)] < 0)
            freeRegs.push_back(reg);
    }
    fused.numRegs_ = nextReg;
    fused.fusionSavings_ = fuser.hits;
    fused.fmaContractions_ = fmaContractions;
    return fused;
}

void
FusedTape::evalInto(const double *state, double t, double *out,
                    double *regs) const
{
    assert(out != nullptr || numOutputs_ == 0);
    assert(regs != nullptr || numRegs_ == 0);
    for (const TapeOp &op : ops_) {
        if (op.op == OpCode::WriteOutput) {
            out[op.dst] = regs[op.a];
            continue;
        }
        regs[op.dst] = detail::execCompute(op, state, t, regs);
    }
    // Deterministic fault injection: poison the first output, as a
    // numerical fault in the RHS would (tests of divergence handling
    // and the retry supervisor arm this; zero cost disarmed).
    if (support::FaultInjector::shouldFire(support::FaultSite::TapeNan) &&
        numOutputs_ > 0)
        out[0] = std::numeric_limits<double>::quiet_NaN();
}

std::vector<double>
FusedTape::evalAlloc(const std::vector<double> &state, double t) const
{
    std::vector<double> out(numOutputs_);
    std::vector<double> regs(static_cast<std::size_t>(numRegs_));
    evalInto(state.data(), t, out.data(), regs.data());
    return out;
}

} // namespace ark::expr
