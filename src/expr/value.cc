#include "expr/value.h"

#include "expr/expr.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/strings.h"

namespace ark::expr {

using support::TypeError;

const char *
valueKindName(ValueKind kind)
{
    switch (kind) {
      case ValueKind::Real: return "real";
      case ValueKind::Int: return "int";
      case ValueKind::Bool: return "bool";
      case ValueKind::Function: return "lambd";
    }
    return "value";
}

Value::Value()
    : kind_(ValueKind::Real)
{
}

Value
Value::real(double v)
{
    Value out;
    out.kind_ = ValueKind::Real;
    out.real_ = v;
    return out;
}

Value
Value::integer(std::int64_t v)
{
    Value out;
    out.kind_ = ValueKind::Int;
    out.int_ = v;
    return out;
}

Value
Value::boolean(bool v)
{
    Value out;
    out.kind_ = ValueKind::Bool;
    out.bool_ = v;
    return out;
}

Value
Value::function(Lambda lambda)
{
    Value out;
    out.kind_ = ValueKind::Function;
    out.fn_ = std::make_shared<const Lambda>(std::move(lambda));
    return out;
}

double
Value::asReal() const
{
    if (kind_ == ValueKind::Real)
        return real_;
    if (kind_ == ValueKind::Int)
        return static_cast<double>(int_);
    throw TypeError(support::cat("expected a numeric value, got ",
                                 valueKindName(kind_)));
}

std::int64_t
Value::asInt() const
{
    if (kind_ != ValueKind::Int) {
        throw TypeError(support::cat("expected an int value, got ",
                                     valueKindName(kind_)));
    }
    return int_;
}

bool
Value::asBool() const
{
    if (kind_ != ValueKind::Bool) {
        throw TypeError(support::cat("expected a bool value, got ",
                                     valueKindName(kind_)));
    }
    return bool_;
}

const Lambda &
Value::asFunction() const
{
    if (kind_ != ValueKind::Function) {
        throw TypeError(support::cat("expected a lambd value, got ",
                                     valueKindName(kind_)));
    }
    return *fn_;
}

std::string
Value::str() const
{
    switch (kind_) {
      case ValueKind::Real:
        return support::formatDouble(real_);
      case ValueKind::Int:
        return std::to_string(int_);
      case ValueKind::Bool:
        return bool_ ? "true" : "false";
      case ValueKind::Function: {
        std::string out = "lambd(";
        for (std::size_t i = 0; i < fn_->params.size(); ++i) {
            if (i > 0)
                out += ",";
            out += fn_->params[i];
        }
        out += "): ";
        out += fn_->body ? fn_->body->str() : "<null>";
        return out;
      }
    }
    return "<?>";
}

bool
Value::operator==(const Value &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case ValueKind::Real: return real_ == other.real_;
      case ValueKind::Int: return int_ == other.int_;
      case ValueKind::Bool: return bool_ == other.bool_;
      case ValueKind::Function: return str() == other.str();
    }
    return false;
}

} // namespace ark::expr
