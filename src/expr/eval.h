#ifndef ARK_EXPR_EVAL_H
#define ARK_EXPR_EVAL_H

/**
 * @file
 * Tree-walking interpreter and type checker for Ark expressions.
 *
 * The interpreter serves semantic analysis (constant attribute
 * evaluation, set-switch conditions) and acts as the reference
 * implementation the compiled tape is tested against. Hot simulation
 * loops should use expr::Tape instead.
 */

#include <functional>
#include <optional>
#include <string>

#include "expr/expr.h"
#include "expr/value.h"

namespace ark::expr {

/**
 * Name-resolution hooks for evaluation. Unset hooks make the
 * corresponding reference an evaluation error.
 */
struct EvalContext
{
    /** Current simulation time (value of `time`). */
    double time = 0.0;

    /** Resolves a free variable to a value. */
    std::function<std::optional<Value>(const std::string &)> lookupVar;

    /** Resolves base.attr to a value. */
    std::function<std::optional<Value>(const std::string &,
                                       const std::string &)> lookupAttr;

    /** Resolves var(node) to the node's current state value. */
    std::function<std::optional<double>(const std::string &)> lookupNodeVar;

    /** Resolves a StateVar slot (post-compilation trees). */
    std::function<double(int)> lookupState;
};

/**
 * Evaluates an expression to a Value.
 * @throws ark::support::TypeError on unresolvable names, arity or
 *         operand-kind mismatches.
 */
Value eval(const ExprPtr &e, const EvalContext &ctx);

/** Evaluates and coerces to real. */
double evalReal(const ExprPtr &e, const EvalContext &ctx);

/** Evaluates and requires a boolean. */
bool evalBool(const ExprPtr &e, const EvalContext &ctx);

/** Static type of an expression (see checkType). */
enum class StaticType { Real, Int, Bool, Function };

/** Type name for diagnostics. */
const char *staticTypeName(StaticType t);

/**
 * Name-resolution hooks for static checking. Returning nullopt marks
 * the name unknown, which is a TypeError.
 */
struct TypeScope
{
    std::function<std::optional<StaticType>(const std::string &)> varType;
    std::function<std::optional<StaticType>(const std::string &,
                                            const std::string &)> attrType;
    /** Arity of a lambda-typed variable/attribute, for call checking. */
    std::function<std::optional<int>(const std::string &,
                                     const std::string &)> lambdaArity;
    /** True if var(name) is legal in this scope. */
    std::function<bool(const std::string &)> nodeVarOk;
};

/**
 * Checks an expression and returns its static type.
 *
 * Rules: arithmetic needs numeric operands (Int only when both are
 * Int); comparisons need numerics and yield Bool; and/or/not need
 * Bool; if-then-else needs a Bool condition and unifiable branches
 * (Int unifies with Real to Real); calls check builtin or lambda
 * arity; var(n) and StateVar are Real; `time` is Real.
 *
 * @throws ark::support::TypeError describing the first violation.
 */
StaticType checkType(const ExprPtr &e, const TypeScope &scope);

} // namespace ark::expr

#endif // ARK_EXPR_EVAL_H
