#ifndef ARK_EXPR_EXPR_H
#define ARK_EXPR_EXPR_H

/**
 * @file
 * Immutable expression AST for Ark math and boolean expressions.
 *
 * Expressions appear in production rules (node dynamics terms), in
 * lambda attribute bodies, and in set-switch conditions. Nodes are
 * immutable and shared; rewriting (variable substitution, node-variable
 * resolution, lambda inlining) builds new trees.
 *
 * Grammar coverage (Figure 6): literals, variables v, simulation time,
 * attribute references v.v', unary/binary math, comparisons, logical
 * and/or/not, if-then-else, calls to builtin functions and to
 * lambda-valued variables/attributes, and var(n) node-state references.
 * StateVar is a post-compilation form: an index into the flattened
 * simulation state vector.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "expr/value.h"

namespace ark::expr {

/** Binary operators (math, comparison, logical). */
enum class BinOp : std::uint8_t {
    Add, Sub, Mul, Div, Pow,
    Lt, Le, Gt, Ge, Eq, Ne,
    And, Or,
};

/** Unary operators. */
enum class UnOp : std::uint8_t { Neg, Not };

/** Operator spellings ("+", "<=", "and", ...). */
const char *binOpName(BinOp op);
const char *unOpName(UnOp op);

/** True for Lt..Ne. */
bool isComparison(BinOp op);
/** True for And/Or. */
bool isLogical(BinOp op);
/** True for Add..Pow. */
bool isArithmetic(BinOp op);

/** Discriminates Expr alternatives. */
enum class ExprKind : std::uint8_t {
    Literal,  ///< A Value constant.
    Var,      ///< Named variable (function arg or rule binding).
    Attr,     ///< base.attr reference.
    Time,     ///< Simulation time.
    Unary,    ///< UnOp applied to one operand.
    Binary,   ///< BinOp applied to two operands.
    Call,     ///< Builtin or lambda call.
    If,       ///< if b then e else e'.
    NodeVar,  ///< var(n): state variable of a graph node, by name.
    StateVar, ///< Resolved state-vector slot (post-compilation).
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/**
 * One expression tree node. Construct through the static factories;
 * fields not applicable to the node's kind are empty/zero.
 */
class Expr : public std::enable_shared_from_this<Expr>
{
  public:
    static ExprPtr literal(Value v);
    static ExprPtr real(double v);
    static ExprPtr integer(std::int64_t v);
    static ExprPtr boolean(bool v);
    static ExprPtr var(std::string name);
    static ExprPtr attr(std::string base, std::string name);
    static ExprPtr time();
    static ExprPtr unary(UnOp op, ExprPtr operand);
    static ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
    /** Call of a builtin by name. */
    static ExprPtr call(std::string callee, std::vector<ExprPtr> args);
    /** Call of a lambda-valued expression (variable or attribute). */
    static ExprPtr callExpr(ExprPtr callee, std::vector<ExprPtr> args);
    static ExprPtr ifThenElse(ExprPtr cond, ExprPtr then, ExprPtr other);
    static ExprPtr nodeVar(std::string node);
    static ExprPtr stateVar(int index);

    ExprKind kind() const { return kind_; }

    /** @name Kind-specific accessors (panic on kind mismatch). */
    /// @{
    const Value &literalValue() const;
    const std::string &varName() const;
    const std::string &attrBase() const;
    const std::string &attrName() const;
    UnOp unOp() const;
    BinOp binOp() const;
    const ExprPtr &lhs() const;
    const ExprPtr &rhs() const;
    const ExprPtr &operand() const;
    const std::string &callee() const;
    const ExprPtr &calleeExpr() const;
    const std::vector<ExprPtr> &args() const;
    const ExprPtr &cond() const;
    const ExprPtr &thenBranch() const;
    const ExprPtr &elseBranch() const;
    const std::string &nodeName() const;
    int stateIndex() const;
    /// @}

    /** Parenthesized source-like rendering. */
    std::string str() const;

    /** Structural equality. */
    bool equals(const Expr &other) const;

    /** Applies fn to every node in the tree (preorder). */
    void visit(const std::function<void(const Expr &)> &fn) const;

    /** Lists free variable names (Var nodes), deduplicated. */
    std::vector<std::string> freeVars() const;

    /** Lists node names referenced via var(.), deduplicated. */
    std::vector<std::string> nodeVars() const;

  protected:
    Expr() = default;

  private:
    ExprKind kind_ = ExprKind::Literal;
    Value value_;
    std::string name_;       // Var name, Attr base, Call builtin, NodeVar
    std::string attr_;       // Attr attribute name
    UnOp unOp_ = UnOp::Neg;
    BinOp binOp_ = BinOp::Add;
    ExprPtr a_, b_, c_;      // operands / cond-then-else
    ExprPtr calleeExpr_;
    std::vector<ExprPtr> args_;
    int stateIndex_ = -1;
};

/** @name Rewriting
 * Each returns a new tree sharing unmodified subtrees.
 */
/// @{

/** Replaces Var nodes by name. Unmapped variables stay untouched. */
ExprPtr substituteVars(
    const ExprPtr &e,
    const std::function<ExprPtr(const std::string &)> &lookup);

/** Replaces NodeVar nodes by node name. */
ExprPtr substituteNodeVars(
    const ExprPtr &e,
    const std::function<ExprPtr(const std::string &)> &lookup);

/**
 * Replaces Attr nodes via (base, attr) lookup. Returning nullptr keeps
 * the reference unchanged.
 */
ExprPtr substituteAttrs(
    const ExprPtr &e,
    const std::function<ExprPtr(const std::string &, const std::string &)>
        &lookup);

/**
 * Renames the base of attribute references and variables; used when
 * instantiating a production rule for concrete graph elements.
 */
ExprPtr renameBindings(
    const ExprPtr &e,
    const std::function<std::string(const std::string &)> &rename);

/**
 * Beta-reduces a lambda applied to argument expressions.
 * @throws ark::support::TypeError on arity mismatch.
 */
ExprPtr applyLambda(const Lambda &lambda, const std::vector<ExprPtr> &args);

/// @}

} // namespace ark::expr

#endif // ARK_EXPR_EXPR_H
