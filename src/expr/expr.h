#ifndef ARK_EXPR_EXPR_H
#define ARK_EXPR_EXPR_H

/**
 * @file
 * Immutable, hash-consed expression IR for Ark math and boolean
 * expressions.
 *
 * Expressions appear in production rules (node dynamics terms), in
 * lambda attribute bodies, and in set-switch conditions. Nodes are
 * immutable and shared; rewriting (variable substitution, node-variable
 * resolution, lambda inlining) builds new trees.
 *
 * Grammar coverage (Figure 6): literals, variables v, simulation time,
 * attribute references v.v', unary/binary math, comparisons, logical
 * and/or/not, if-then-else, calls to builtin functions and to
 * lambda-valued variables/attributes, and var(n) node-state references.
 * StateVar is a post-compilation form: an index into the flattened
 * simulation state vector.
 *
 * ## Hash-consing
 *
 * Every factory interns the node it would build in a process-wide
 * table keyed by a memoized 128-bit structural digest, so
 * **structurally equal live subtrees are one pointer**. That single
 * invariant is what the layers above build on:
 *
 *  - structural equality is pointer equality (`equals()` keeps a deep
 *    fallback for robustness, but live interned nodes never need it);
 *  - cross-equation CSE in expr::FusedTape's value numbering becomes
 *    a pointer-keyed memo hit instead of a structural re-hash;
 *  - `engine::Hasher::absorb(Expr)` is O(1): it absorbs the memoized
 *    digest instead of re-walking the tree, so graph fingerprints stop
 *    paying a full serialization per compile;
 *  - `id()` is a process-unique, monotonically assigned node id
 *    (never reused, even after table purges), usable as a memo key
 *    that can't suffer ABA.
 *
 * Interning compares literals **bit-exactly** (`-0.0` and `0.0` are
 * distinct nodes; two NaN literals with equal payloads are the same
 * node), matching the engine's bit-identical cache contracts. The
 * table holds strong references and sweeps entries whose only owner
 * is the table itself when a high-water mark is crossed, so the
 * sharing invariant above always holds for nodes a caller can still
 * reach.
 *
 * ## Rewrite-soundness contract
 *
 * Passes over this IR are staged by rounding behavior:
 *
 *  - **Exact, always-on** (expr/fold.h, run by the compiler on every
 *    lowering): constant folding and field identities (x+0, x*1,
 *    -(-x), literal branch pruning). These never change the IEEE
 *    value of any result and shrink every execution tier.
 *  - **Rounding-changing, opt-in only** (expr/rewrite.h,
 *    sim::SimOptions::tapeReassoc; same contract as tapeFma):
 *    reassociation/reciprocal rewrites that stay within tolerance but
 *    are not bit-identical to the tree. Never applied on the default
 *    path; lane-vs-scalar bit identity still holds under the flag
 *    because every tier executes the same rewritten program.
 *
 * Factories themselves never simplify (`(0 * x)` prints as written —
 * parser and golden tests rely on source-shaped trees); all rewriting
 * lives in the passes.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "expr/value.h"

namespace ark::expr {

/** Binary operators (math, comparison, logical). */
enum class BinOp : std::uint8_t {
    Add, Sub, Mul, Div, Pow,
    Lt, Le, Gt, Ge, Eq, Ne,
    And, Or,
};

/** Unary operators. */
enum class UnOp : std::uint8_t { Neg, Not };

/** Operator spellings ("+", "<=", "and", ...). */
const char *binOpName(BinOp op);
const char *unOpName(UnOp op);

/** True for Lt..Ne. */
bool isComparison(BinOp op);
/** True for And/Or. */
bool isLogical(BinOp op);
/** True for Add..Pow. */
bool isArithmetic(BinOp op);

/** Discriminates Expr alternatives. */
enum class ExprKind : std::uint8_t {
    Literal,  ///< A Value constant.
    Var,      ///< Named variable (function arg or rule binding).
    Attr,     ///< base.attr reference.
    Time,     ///< Simulation time.
    Unary,    ///< UnOp applied to one operand.
    Binary,   ///< BinOp applied to two operands.
    Call,     ///< Builtin or lambda call.
    If,       ///< if b then e else e'.
    NodeVar,  ///< var(n): state variable of a graph node, by name.
    StateVar, ///< Resolved state-vector slot (post-compilation).
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/**
 * One interned expression node. Construct through the static
 * factories (each returns the canonical node for its structure);
 * fields not applicable to the node's kind are empty/zero.
 */
class Expr : public std::enable_shared_from_this<Expr>
{
  public:
    static ExprPtr literal(Value v);
    static ExprPtr real(double v);
    static ExprPtr integer(std::int64_t v);
    static ExprPtr boolean(bool v);
    static ExprPtr var(std::string name);
    static ExprPtr attr(std::string base, std::string name);
    static ExprPtr time();
    static ExprPtr unary(UnOp op, ExprPtr operand);
    static ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
    /** Call of a builtin by name. */
    static ExprPtr call(std::string callee, std::vector<ExprPtr> args);
    /** Call of a lambda-valued expression (variable or attribute). */
    static ExprPtr callExpr(ExprPtr callee, std::vector<ExprPtr> args);
    static ExprPtr ifThenElse(ExprPtr cond, ExprPtr then, ExprPtr other);
    static ExprPtr nodeVar(std::string node);
    static ExprPtr stateVar(int index);

    ExprKind kind() const { return kind_; }

    /**
     * Process-unique node id, assigned monotonically at intern time
     * and never reused (table purges retire ids permanently). Two
     * live nodes have equal ids iff they are the same pointer, so ids
     * are safe memo/cache keys.
     */
    std::uint64_t id() const { return id_; }

    /** @name Memoized 128-bit structural digest.
     * Computed bottom-up at intern time (O(1) per node — children are
     * already interned). Equal digests ⇔ equal structure with
     * bit-exact literals; engine fingerprints absorb these words
     * instead of re-walking the tree.
     */
    /// @{
    std::uint64_t digestHi() const { return digestHi_; }
    std::uint64_t digestLo() const { return digestLo_; }
    /// @}

    /** @name Kind-specific accessors (panic on kind mismatch). */
    /// @{
    const Value &literalValue() const;
    const std::string &varName() const;
    const std::string &attrBase() const;
    const std::string &attrName() const;
    UnOp unOp() const;
    BinOp binOp() const;
    const ExprPtr &lhs() const;
    const ExprPtr &rhs() const;
    const ExprPtr &operand() const;
    const std::string &callee() const;
    const ExprPtr &calleeExpr() const;
    const std::vector<ExprPtr> &args() const;
    const ExprPtr &cond() const;
    const ExprPtr &thenBranch() const;
    const ExprPtr &elseBranch() const;
    const std::string &nodeName() const;
    int stateIndex() const;
    /// @}

    /** Parenthesized source-like rendering. */
    std::string str() const;

    /**
     * Structural equality with bit-exact literals. Live interned
     * nodes make this pointer equality; the deep walk remains as a
     * documented fallback.
     */
    bool equals(const Expr &other) const;

    /** Applies fn to every node in the tree (preorder). */
    void visit(const std::function<void(const Expr &)> &fn) const;

    /** Lists free variable names (Var nodes), deduplicated. */
    std::vector<std::string> freeVars() const;

    /** Lists node names referenced via var(.), deduplicated. */
    std::vector<std::string> nodeVars() const;

  protected:
    Expr() = default;

  private:
    /** Shared intern path for the two Call factory forms. */
    static ExprPtr internCall(std::string callee, ExprPtr calleeExpr,
                              std::vector<ExprPtr> args);

    /** Stamps intern-time identity onto a freshly built node. */
    static void stamp(Expr &e, std::uint64_t id, std::uint64_t hi,
                      std::uint64_t lo)
    {
        e.id_ = id;
        e.digestHi_ = hi;
        e.digestLo_ = lo;
    }

    ExprKind kind_ = ExprKind::Literal;
    Value value_;
    std::string name_;       // Var name, Attr base, Call builtin, NodeVar
    std::string attr_;       // Attr attribute name
    UnOp unOp_ = UnOp::Neg;
    BinOp binOp_ = BinOp::Add;
    ExprPtr a_, b_, c_;      // operands / cond-then-else
    ExprPtr calleeExpr_;
    std::vector<ExprPtr> args_;
    int stateIndex_ = -1;
    std::uint64_t id_ = 0;
    std::uint64_t digestHi_ = 0;
    std::uint64_t digestLo_ = 0;
};

/** @name Intern-table introspection (arkc --ir-stats, tests). */
/// @{

/** Counters of the process-wide intern table. */
struct InternStats
{
    std::uint64_t liveNodes = 0;   ///< Entries currently in the table.
    std::uint64_t internedTotal = 0; ///< Nodes ever interned (= max id).
    std::uint64_t hits = 0;        ///< Factory calls answered by an
                                   ///< existing node.
    std::uint64_t purged = 0;      ///< Entries swept at high-water marks.
};

/** Snapshot of the intern-table counters. */
InternStats internStats();

/**
 * Sweeps table entries whose only remaining owner is the table
 * itself (normally triggered automatically at a high-water mark).
 * Returns the number of entries dropped. Nodes still reachable by
 * callers always survive, preserving the one-pointer invariant.
 */
std::size_t internPurge();

/// @}

/** @name Rewriting
 * Each returns a new tree sharing unmodified subtrees.
 */
/// @{

/** Replaces Var nodes by name. Unmapped variables stay untouched. */
ExprPtr substituteVars(
    const ExprPtr &e,
    const std::function<ExprPtr(const std::string &)> &lookup);

/** Replaces NodeVar nodes by node name. */
ExprPtr substituteNodeVars(
    const ExprPtr &e,
    const std::function<ExprPtr(const std::string &)> &lookup);

/**
 * Replaces Attr nodes via (base, attr) lookup. Returning nullptr keeps
 * the reference unchanged.
 */
ExprPtr substituteAttrs(
    const ExprPtr &e,
    const std::function<ExprPtr(const std::string &, const std::string &)>
        &lookup);

/**
 * Renames the base of attribute references and variables; used when
 * instantiating a production rule for concrete graph elements.
 */
ExprPtr renameBindings(
    const ExprPtr &e,
    const std::function<std::string(const std::string &)> &rename);

/**
 * Beta-reduces a lambda applied to argument expressions.
 * @throws ark::support::TypeError on arity mismatch.
 */
ExprPtr applyLambda(const Lambda &lambda, const std::vector<ExprPtr> &args);

/// @}

} // namespace ark::expr

#endif // ARK_EXPR_EXPR_H
