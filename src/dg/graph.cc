#include "dg/graph.h"

#include <cmath>
#include <sstream>

#include "support/error.h"
#include "support/logging.h"

namespace ark::dg {

using support::cat;
using support::SemaError;
using support::TypeError;

Graph::Graph(const TypeTable *types, std::string langName)
    : types_(types), langName_(std::move(langName))
{
    support::panicIf(types_ == nullptr, "Graph requires a type table");
}

NodeId
Graph::addNode(const std::string &name, const std::string &type)
{
    if (nodeByName_.count(name) || edgeByName_.count(name))
        throw SemaError(cat("duplicate element name '", name, "'"));
    const NodeTypeDef &def = types_->nodeType(type);
    Node node;
    node.name = name;
    node.type = type;
    node.inits.resize(static_cast<std::size_t>(def.order));
    // Attributes and inits pinned at declaration are filled in eagerly.
    for (const auto &attr : def.attrs) {
        if (attr.fixedValue) {
            node.attrs.emplace(attr.name,
                               AttrValue{*attr.fixedValue,
                                         *attr.fixedValue});
        }
    }
    for (const auto &init : def.inits) {
        if (init.fixedValue && init.derivative < def.order)
            node.inits[static_cast<std::size_t>(init.derivative)] =
                *init.fixedValue;
    }
    auto id = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back(std::move(node));
    adjacency_.emplace_back();
    nodeByName_.emplace(name, id);
    return NodeId{id};
}

EdgeId
Graph::addEdge(const std::string &name, const std::string &type,
               NodeId src, NodeId dst)
{
    if (nodeByName_.count(name) || edgeByName_.count(name))
        throw SemaError(cat("duplicate element name '", name, "'"));
    if (!src.valid() || src.index >= static_cast<std::int32_t>(nodes_.size()))
        throw SemaError(cat("edge '", name, "' has an invalid source"));
    if (!dst.valid() || dst.index >= static_cast<std::int32_t>(nodes_.size()))
        throw SemaError(cat("edge '", name, "' has an invalid destination"));
    const EdgeTypeDef &def = types_->edgeType(type);
    Edge edge;
    edge.name = name;
    edge.type = type;
    edge.src = src;
    edge.dst = dst;
    for (const auto &attr : def.attrs) {
        if (attr.fixedValue) {
            edge.attrs.emplace(attr.name,
                               AttrValue{*attr.fixedValue,
                                         *attr.fixedValue});
        }
    }
    auto id = static_cast<std::int32_t>(edges_.size());
    edges_.push_back(std::move(edge));
    edgeByName_.emplace(name, id);
    adjacency_[static_cast<std::size_t>(src.index)].push_back(id);
    if (dst != src)
        adjacency_[static_cast<std::size_t>(dst.index)].push_back(id);
    return EdgeId{id};
}

AttrValue
Graph::makeAttrValue(const DataType &type, const expr::Value &nominal,
                     support::Rng *rng, const std::string &what) const
{
    if (!type.contains(nominal)) {
        throw TypeError(cat("value ", nominal.str(), " does not fit ",
                            what, " of type ", type.str()));
    }
    AttrValue out{nominal, nominal};
    if (type.hasMismatch() && nominal.isNumeric() && rng) {
        double x = nominal.asReal();
        double sigma = type.mismatch()->s0 +
                       type.mismatch()->s1 * std::fabs(x);
        out.effective = expr::Value::real(rng->gaussian(x, sigma));
    } else if (type.isReal() && nominal.isInt()) {
        // Normalize int literals written into real attributes.
        out.effective = expr::Value::real(nominal.asReal());
    }
    return out;
}

void
Graph::setNodeAttr(NodeId id, const std::string &attr,
                   const expr::Value &nominal, support::Rng *rng)
{
    Node &n = nodes_.at(static_cast<std::size_t>(id.index));
    const NodeTypeDef &def = types_->nodeType(n.type);
    const AttrDef *adef = def.findAttr(attr);
    if (!adef) {
        throw SemaError(cat("node type '", n.type,
                            "' has no attribute '", attr, "'"));
    }
    n.attrs[attr] = makeAttrValue(adef->type, nominal, rng,
                                  cat("attribute '", n.name, ".", attr,
                                      "'"));
}

void
Graph::setEdgeAttr(EdgeId id, const std::string &attr,
                   const expr::Value &nominal, support::Rng *rng)
{
    Edge &e = edges_.at(static_cast<std::size_t>(id.index));
    const EdgeTypeDef &def = types_->edgeType(e.type);
    const AttrDef *adef = def.findAttr(attr);
    if (!adef) {
        throw SemaError(cat("edge type '", e.type,
                            "' has no attribute '", attr, "'"));
    }
    e.attrs[attr] = makeAttrValue(adef->type, nominal, rng,
                                  cat("attribute '", e.name, ".", attr,
                                      "'"));
}

void
Graph::setInit(NodeId id, int derivative, const expr::Value &value,
               support::Rng *rng)
{
    Node &n = nodes_.at(static_cast<std::size_t>(id.index));
    const NodeTypeDef &def = types_->nodeType(n.type);
    if (derivative < 0 || derivative >= def.order) {
        throw SemaError(cat("node '", n.name, "' of order ", def.order,
                            " has no derivative ", derivative));
    }
    const InitDef *idef = def.findInit(derivative);
    if (!idef) {
        throw SemaError(cat("node type '", n.type,
                            "' lacks an init(", derivative,
                            ") declaration"));
    }
    AttrValue av = makeAttrValue(idef->type, value, rng,
                                 cat("init(", derivative, ") of '",
                                     n.name, "'"));
    n.inits[static_cast<std::size_t>(derivative)] = av.effective;
}

void
Graph::setEnabled(EdgeId id, bool enabled)
{
    Edge &e = edges_.at(static_cast<std::size_t>(id.index));
    const EdgeTypeDef &def = types_->edgeType(e.type);
    if (def.fixed) {
        throw SemaError(cat("edge '", e.name, "' of fixed type '",
                            e.type, "' cannot be switched"));
    }
    e.enabled = enabled;
    e.switchable = true;
}

std::optional<NodeId>
Graph::findNode(const std::string &name) const
{
    auto it = nodeByName_.find(name);
    if (it == nodeByName_.end())
        return std::nullopt;
    return NodeId{it->second};
}

std::optional<EdgeId>
Graph::findEdge(const std::string &name) const
{
    auto it = edgeByName_.find(name);
    if (it == edgeByName_.end())
        return std::nullopt;
    return EdgeId{it->second};
}

const Node &
Graph::node(NodeId id) const
{
    return nodes_.at(static_cast<std::size_t>(id.index));
}

const Edge &
Graph::edge(EdgeId id) const
{
    return edges_.at(static_cast<std::size_t>(id.index));
}

const expr::Value &
Graph::nodeAttr(NodeId id, const std::string &attr) const
{
    const Node &n = node(id);
    auto it = n.attrs.find(attr);
    if (it == n.attrs.end()) {
        throw SemaError(cat("attribute '", n.name, ".", attr,
                            "' was never assigned"));
    }
    return it->second.effective;
}

const expr::Value &
Graph::edgeAttr(EdgeId id, const std::string &attr) const
{
    const Edge &e = edge(id);
    auto it = e.attrs.find(attr);
    if (it == e.attrs.end()) {
        throw SemaError(cat("attribute '", e.name, ".", attr,
                            "' was never assigned"));
    }
    return it->second.effective;
}

const expr::Value &
Graph::nodeAttrNominal(NodeId id, const std::string &attr) const
{
    const Node &n = node(id);
    auto it = n.attrs.find(attr);
    if (it == n.attrs.end()) {
        throw SemaError(cat("attribute '", n.name, ".", attr,
                            "' was never assigned"));
    }
    return it->second.nominal;
}

expr::Value
Graph::initValue(NodeId id, int derivative) const
{
    const Node &n = node(id);
    if (derivative < 0 ||
        derivative >= static_cast<int>(n.inits.size())) {
        return expr::Value::real(0.0);
    }
    const auto &slot = n.inits[static_cast<std::size_t>(derivative)];
    return slot ? *slot : expr::Value::real(0.0);
}

const NodeTypeDef &
Graph::nodeTypeOf(NodeId id) const
{
    return types_->nodeType(node(id).type);
}

const EdgeTypeDef &
Graph::edgeTypeOf(EdgeId id) const
{
    return types_->edgeType(edge(id).type);
}

std::vector<EdgeId>
Graph::incomingEdges(NodeId id) const
{
    std::vector<EdgeId> out;
    for (std::int32_t eidx : adjacency_.at(static_cast<std::size_t>(id.index))) {
        const Edge &e = edges_[static_cast<std::size_t>(eidx)];
        if (e.enabled && !e.isSelf() && e.dst == id)
            out.push_back(EdgeId{eidx});
    }
    return out;
}

std::vector<EdgeId>
Graph::outgoingEdges(NodeId id) const
{
    std::vector<EdgeId> out;
    for (std::int32_t eidx : adjacency_.at(static_cast<std::size_t>(id.index))) {
        const Edge &e = edges_[static_cast<std::size_t>(eidx)];
        if (e.enabled && !e.isSelf() && e.src == id)
            out.push_back(EdgeId{eidx});
    }
    return out;
}

std::vector<EdgeId>
Graph::selfEdges(NodeId id) const
{
    std::vector<EdgeId> out;
    for (std::int32_t eidx : adjacency_.at(static_cast<std::size_t>(id.index))) {
        const Edge &e = edges_[static_cast<std::size_t>(eidx)];
        if (e.enabled && e.isSelf())
            out.push_back(EdgeId{eidx});
    }
    return out;
}

std::vector<EdgeId>
Graph::edgesOf(NodeId id) const
{
    std::vector<EdgeId> out;
    for (std::int32_t eidx : adjacency_.at(static_cast<std::size_t>(id.index))) {
        const Edge &e = edges_[static_cast<std::size_t>(eidx)];
        if (e.enabled)
            out.push_back(EdgeId{eidx});
    }
    return out;
}

std::vector<EdgeId>
Graph::allEdgesOf(NodeId id) const
{
    std::vector<EdgeId> out;
    for (std::int32_t eidx : adjacency_.at(static_cast<std::size_t>(id.index)))
        out.push_back(EdgeId{eidx});
    return out;
}

void
Graph::checkComplete() const
{
    for (const auto &n : nodes_) {
        const NodeTypeDef &def = types_->nodeType(n.type);
        for (const auto &attr : def.attrs) {
            if (!n.attrs.count(attr.name)) {
                throw SemaError(cat("attribute '", n.name, ".", attr.name,
                                    "' was never assigned"));
            }
        }
        for (int d = 0; d < def.order; ++d) {
            if (!n.inits[static_cast<std::size_t>(d)].has_value() &&
                !def.findInit(d)) {
                throw SemaError(cat("node '", n.name,
                                    "' is missing init(", d, ")"));
            }
        }
    }
    for (const auto &e : edges_) {
        const EdgeTypeDef &def = types_->edgeType(e.type);
        for (const auto &attr : def.attrs) {
            if (!e.attrs.count(attr.name)) {
                throw SemaError(cat("attribute '", e.name, ".", attr.name,
                                    "' was never assigned"));
            }
        }
    }
}

std::string
Graph::str() const
{
    std::ostringstream oss;
    oss << "graph(lang=" << langName_ << ", nodes=" << nodes_.size()
        << ", edges=" << edges_.size() << ")\n";
    for (const auto &n : nodes_) {
        oss << "  node " << n.name << " : " << n.type;
        for (const auto &[k, v] : n.attrs)
            oss << " " << k << "=" << v.effective.str();
        oss << "\n";
    }
    for (const auto &e : edges_) {
        oss << "  edge " << e.name << " : " << e.type << " "
            << nodes_[static_cast<std::size_t>(e.src.index)].name << " -> "
            << nodes_[static_cast<std::size_t>(e.dst.index)].name;
        if (!e.enabled)
            oss << " (off)";
        oss << "\n";
    }
    return oss.str();
}

} // namespace ark::dg
