#ifndef ARK_DG_TYPES_H
#define ARK_DG_TYPES_H

/**
 * @file
 * Node and edge type descriptors and the per-language type table.
 *
 * A node type carries a differential-equation order p, a reduction
 * operator (sum or mul) used to aggregate production terms, named
 * attributes, and initial-value declarations for derivatives
 * 0..p-1. An edge type carries attributes and an optional `fixed`
 * marker (non-switchable hardware connections). Types form single-
 * inheritance chains; the language layer fills derived types with
 * inherited members so every descriptor here is complete on its own.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dg/datatype.h"
#include "expr/value.h"

namespace ark::dg {

/** Reduction operator aggregating production terms (paper's Λ). */
enum class Reduction : std::uint8_t { Sum, Mul };

/** "sum" or "mul". */
const char *reductionName(Reduction r);

/** One attribute declaration inside a node or edge type. */
struct AttrDef
{
    std::string name;
    DataType type;
    /** Value pinned at declaration (const attributes may carry one). */
    std::optional<expr::Value> fixedValue;
};

/** One init(i) declaration: initial value of the ith derivative. */
struct InitDef
{
    int derivative = 0;
    DataType type;
    std::optional<expr::Value> fixedValue;
};

/** Node type descriptor (grammar: node-type(p, Reduc) v { Attr* }). */
struct NodeTypeDef
{
    std::string name;
    int order = 0;
    Reduction reduction = Reduction::Sum;
    std::vector<AttrDef> attrs;
    std::vector<InitDef> inits;
    std::string parent; ///< Empty when the type is a root.
    std::string lang;   ///< Defining language (diagnostics).

    const AttrDef *findAttr(const std::string &attr) const;
    const InitDef *findInit(int derivative) const;
};

/** Edge type descriptor (grammar: edge-type [fixed] v { Attr* }). */
struct EdgeTypeDef
{
    std::string name;
    bool fixed = false;
    std::vector<AttrDef> attrs;
    std::string parent;
    std::string lang;

    const AttrDef *findAttr(const std::string &attr) const;
};

/**
 * All node and edge types visible to one language (its own plus every
 * inherited one), with ancestry queries used by production-rule
 * lookup and validation.
 */
class TypeTable
{
  public:
    /** @throws SemaError on duplicate names or missing parents. */
    void addNodeType(NodeTypeDef def);
    void addEdgeType(EdgeTypeDef def);

    const NodeTypeDef *findNodeType(const std::string &name) const;
    const EdgeTypeDef *findEdgeType(const std::string &name) const;

    /** @throws SemaError when absent. */
    const NodeTypeDef &nodeType(const std::string &name) const;
    const EdgeTypeDef &edgeType(const std::string &name) const;

    bool hasNodeType(const std::string &name) const;
    bool hasEdgeType(const std::string &name) const;

    /**
     * Reflexive ancestry: true when `ancestor` equals `derived` or
     * appears on its parent chain.
     */
    bool isNodeAncestor(const std::string &ancestor,
                        const std::string &derived) const;
    bool isEdgeAncestor(const std::string &ancestor,
                        const std::string &derived) const;

    /**
     * Inheritance distance from derived up to ancestor (0 when equal),
     * or -1 when `ancestor` is not on the chain. Production-rule
     * lookup minimizes this to pick the most specific rule.
     */
    int nodeDistance(const std::string &derived,
                     const std::string &ancestor) const;
    int edgeDistance(const std::string &derived,
                     const std::string &ancestor) const;

    /** Declaration-ordered listings (stable output). */
    const std::vector<NodeTypeDef> &nodeTypes() const { return nodeTypes_; }
    const std::vector<EdgeTypeDef> &edgeTypes() const { return edgeTypes_; }

    /** All node-type names; handy for diagnostics. */
    std::vector<std::string> nodeTypeNames() const;
    std::vector<std::string> edgeTypeNames() const;

  private:
    std::vector<NodeTypeDef> nodeTypes_;
    std::vector<EdgeTypeDef> edgeTypes_;
};

} // namespace ark::dg

#endif // ARK_DG_TYPES_H
