#include "dg/types.h"

#include "support/error.h"
#include "support/logging.h"

namespace ark::dg {

using support::cat;
using support::SemaError;

const char *
reductionName(Reduction r)
{
    return r == Reduction::Sum ? "sum" : "mul";
}

const AttrDef *
NodeTypeDef::findAttr(const std::string &attr) const
{
    for (const auto &a : attrs)
        if (a.name == attr)
            return &a;
    return nullptr;
}

const InitDef *
NodeTypeDef::findInit(int derivative) const
{
    for (const auto &init : inits)
        if (init.derivative == derivative)
            return &init;
    return nullptr;
}

const AttrDef *
EdgeTypeDef::findAttr(const std::string &attr) const
{
    for (const auto &a : attrs)
        if (a.name == attr)
            return &a;
    return nullptr;
}

void
TypeTable::addNodeType(NodeTypeDef def)
{
    if (hasNodeType(def.name) || hasEdgeType(def.name)) {
        throw SemaError(cat("duplicate type name '", def.name, "'"));
    }
    if (!def.parent.empty() && !hasNodeType(def.parent)) {
        throw SemaError(cat("node type '", def.name,
                            "' inherits unknown type '", def.parent, "'"));
    }
    nodeTypes_.push_back(std::move(def));
}

void
TypeTable::addEdgeType(EdgeTypeDef def)
{
    if (hasNodeType(def.name) || hasEdgeType(def.name)) {
        throw SemaError(cat("duplicate type name '", def.name, "'"));
    }
    if (!def.parent.empty() && !hasEdgeType(def.parent)) {
        throw SemaError(cat("edge type '", def.name,
                            "' inherits unknown type '", def.parent, "'"));
    }
    edgeTypes_.push_back(std::move(def));
}

const NodeTypeDef *
TypeTable::findNodeType(const std::string &name) const
{
    for (const auto &t : nodeTypes_)
        if (t.name == name)
            return &t;
    return nullptr;
}

const EdgeTypeDef *
TypeTable::findEdgeType(const std::string &name) const
{
    for (const auto &t : edgeTypes_)
        if (t.name == name)
            return &t;
    return nullptr;
}

const NodeTypeDef &
TypeTable::nodeType(const std::string &name) const
{
    const NodeTypeDef *t = findNodeType(name);
    if (!t)
        throw SemaError(cat("unknown node type '", name, "'"));
    return *t;
}

const EdgeTypeDef &
TypeTable::edgeType(const std::string &name) const
{
    const EdgeTypeDef *t = findEdgeType(name);
    if (!t)
        throw SemaError(cat("unknown edge type '", name, "'"));
    return *t;
}

bool
TypeTable::hasNodeType(const std::string &name) const
{
    return findNodeType(name) != nullptr;
}

bool
TypeTable::hasEdgeType(const std::string &name) const
{
    return findEdgeType(name) != nullptr;
}

int
TypeTable::nodeDistance(const std::string &derived,
                        const std::string &ancestor) const
{
    int dist = 0;
    std::string current = derived;
    while (true) {
        if (current == ancestor)
            return dist;
        const NodeTypeDef *t = findNodeType(current);
        if (!t || t->parent.empty())
            return -1;
        current = t->parent;
        ++dist;
    }
}

int
TypeTable::edgeDistance(const std::string &derived,
                        const std::string &ancestor) const
{
    int dist = 0;
    std::string current = derived;
    while (true) {
        if (current == ancestor)
            return dist;
        const EdgeTypeDef *t = findEdgeType(current);
        if (!t || t->parent.empty())
            return -1;
        current = t->parent;
        ++dist;
    }
}

bool
TypeTable::isNodeAncestor(const std::string &ancestor,
                          const std::string &derived) const
{
    return nodeDistance(derived, ancestor) >= 0;
}

bool
TypeTable::isEdgeAncestor(const std::string &ancestor,
                          const std::string &derived) const
{
    return edgeDistance(derived, ancestor) >= 0;
}

std::vector<std::string>
TypeTable::nodeTypeNames() const
{
    std::vector<std::string> names;
    names.reserve(nodeTypes_.size());
    for (const auto &t : nodeTypes_)
        names.push_back(t.name);
    return names;
}

std::vector<std::string>
TypeTable::edgeTypeNames() const
{
    std::vector<std::string> names;
    names.reserve(edgeTypes_.size());
    for (const auto &t : edgeTypes_)
        names.push_back(t.name);
    return names;
}

} // namespace ark::dg
