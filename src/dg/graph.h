#ifndef ARK_DG_GRAPH_H
#define ARK_DG_GRAPH_H

/**
 * @file
 * The dynamical graph (DG): Ark's unified intermediate representation
 * for analog computations and circuit descriptions (paper §3).
 *
 * A DG is a typed directed multigraph. Every node maps to a variable
 * of the underlying dynamical system (order p => p state variables);
 * every edge contributes terms to the dynamics of its endpoints via
 * the owning language's production rules. Nodes and edges carry
 * attribute values fixed before simulation; mismatch-annotated
 * attributes store the sampled value alongside the written nominal.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dg/types.h"
#include "expr/value.h"
#include "support/rng.h"

namespace ark::dg {

/** Index-based node handle (valid for the owning Graph only). */
struct NodeId
{
    std::int32_t index = -1;
    bool valid() const { return index >= 0; }
    bool operator==(const NodeId &) const = default;
};

/** Index-based edge handle. */
struct EdgeId
{
    std::int32_t index = -1;
    bool valid() const { return index >= 0; }
    bool operator==(const EdgeId &) const = default;
};

/** Stored attribute assignment: nominal written value + sample. */
struct AttrValue
{
    expr::Value nominal;   ///< The value the program wrote.
    expr::Value effective; ///< After mismatch sampling (== nominal if none).
};

/** One DG node instance. */
struct Node
{
    std::string name;
    std::string type;
    std::unordered_map<std::string, AttrValue> attrs;
    /** Initial value per derivative 0..order-1 (unset = nullopt). */
    std::vector<std::optional<expr::Value>> inits;
};

/** One DG edge instance. */
struct Edge
{
    std::string name;
    std::string type;
    NodeId src;
    NodeId dst;
    std::unordered_map<std::string, AttrValue> attrs;
    bool enabled = true;     ///< Switch state (set-switch).
    bool switchable = false; ///< True once a set-switch targeted it.

    bool isSelf() const { return src == dst; }
};

/**
 * A dynamical graph bound to a language's TypeTable.
 *
 * The table is non-owning and must outlive the graph (languages are
 * registry-owned and immortal in practice). Mutators type-check
 * against the table and throw TypeError/SemaError on misuse.
 */
class Graph
{
  public:
    /** @param types Type table of the language this DG is written in.
     *  @param langName Language name (diagnostics, casting checks). */
    Graph(const TypeTable *types, std::string langName);

    const TypeTable &types() const { return *types_; }
    const std::string &langName() const { return langName_; }

    /** @name Construction */
    /// @{

    /** Adds a node. @throws SemaError on dup name or unknown type. */
    NodeId addNode(const std::string &name, const std::string &type);

    /** Adds an edge. @throws SemaError on dup name/unknown type. */
    EdgeId addEdge(const std::string &name, const std::string &type,
                   NodeId src, NodeId dst);

    /**
     * Writes a node attribute. Range/type-checks the nominal value
     * against the attribute's datatype; if the datatype carries
     * mm(s0,s1) and `rng` is non-null, stores a sample from
     * N(x, |x|*s0 + s1) as the effective value.
     */
    void setNodeAttr(NodeId node, const std::string &attr,
                     const expr::Value &nominal,
                     support::Rng *rng = nullptr);

    /** Edge-attribute analogue of setNodeAttr. */
    void setEdgeAttr(EdgeId edge, const std::string &attr,
                     const expr::Value &nominal,
                     support::Rng *rng = nullptr);

    /** Sets the initial value of the ith derivative of a node. */
    void setInit(NodeId node, int derivative, const expr::Value &value,
                 support::Rng *rng = nullptr);

    /**
     * Sets an edge's switch state. @throws SemaError for edges of a
     * `fixed` edge type (non-programmable switches are always on).
     */
    void setEnabled(EdgeId edge, bool enabled);

    /// @}

    /** @name Lookup */
    /// @{

    std::optional<NodeId> findNode(const std::string &name) const;
    std::optional<EdgeId> findEdge(const std::string &name) const;

    const Node &node(NodeId id) const;
    const Edge &edge(EdgeId id) const;

    std::size_t numNodes() const { return nodes_.size(); }
    std::size_t numEdges() const { return edges_.size(); }

    /** Effective attribute value. @throws SemaError when unset. */
    const expr::Value &nodeAttr(NodeId node, const std::string &attr) const;
    const expr::Value &edgeAttr(EdgeId edge, const std::string &attr) const;

    /** Nominal (pre-mismatch) attribute value. */
    const expr::Value &nodeAttrNominal(NodeId node,
                                       const std::string &attr) const;

    /** Initial value of the ith derivative (0.0 default if unset). */
    expr::Value initValue(NodeId node, int derivative) const;

    /** Node/edge type descriptors. */
    const NodeTypeDef &nodeTypeOf(NodeId id) const;
    const EdgeTypeDef &edgeTypeOf(EdgeId id) const;

    /// @}

    /** @name Topology queries (enabled edges only unless noted) */
    /// @{

    /** Incoming non-self enabled edges of a node. */
    std::vector<EdgeId> incomingEdges(NodeId node) const;

    /** Outgoing non-self enabled edges of a node. */
    std::vector<EdgeId> outgoingEdges(NodeId node) const;

    /** Self-referencing enabled edges of a node. */
    std::vector<EdgeId> selfEdges(NodeId node) const;

    /** All enabled edges touching a node (in + out + self). */
    std::vector<EdgeId> edgesOf(NodeId node) const;

    /** Every edge incl. disabled ones (off-rule compilation). */
    std::vector<EdgeId> allEdgesOf(NodeId node) const;

    /// @}

    /**
     * Verifies that every declared attribute and initial value of
     * every node/edge has been assigned (or carries a fixed value in
     * its type). @throws SemaError naming the first omission.
     */
    void checkComplete() const;

    /** Multi-line description (tests and debugging). */
    std::string str() const;

  private:
    const TypeTable *types_;
    std::string langName_;
    std::vector<Node> nodes_;
    std::vector<Edge> edges_;
    std::unordered_map<std::string, std::int32_t> nodeByName_;
    std::unordered_map<std::string, std::int32_t> edgeByName_;
    /** Per node: indices of touching edges (any direction). */
    std::vector<std::vector<std::int32_t>> adjacency_;

    AttrValue makeAttrValue(const DataType &type,
                            const expr::Value &nominal,
                            support::Rng *rng,
                            const std::string &what) const;
};

} // namespace ark::dg

#endif // ARK_DG_GRAPH_H
