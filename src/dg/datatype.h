#ifndef ARK_DG_DATATYPE_H
#define ARK_DG_DATATYPE_H

/**
 * @file
 * Ark datatypes (the grammar's SigT / SigTProg).
 *
 * Attributes, initial values, and function arguments are typed with
 * bounded reals (optionally mismatch-annotated), bounded integers, or
 * lambda types. Constness (SigT const) marks hardware-fixed,
 * non-programmable quantities.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "expr/value.h"

namespace ark::dg {

/**
 * Process-variation annotation `mm(s0, s1)`: writing nominal value x
 * stores a sample from N(x, s0 + s1*|x|).
 *
 * Note on the paper: §4.3 states N(x, x*s0 + s1), but every listing
 * (Vm.c mm(0,0.1) described as "10% mismatch"; Cpl_ofs.offset
 * mm(0.02,0) producing non-zero offsets around a nominal 0) is only
 * consistent with s0 = absolute sigma and s1 = relative sigma, so
 * that is the semantics implemented here (see DESIGN.md).
 */
struct Mismatch
{
    double s0 = 0.0; ///< Absolute standard deviation.
    double s1 = 0.0; ///< Relative standard-deviation coefficient.

    bool operator==(const Mismatch &) const = default;
};

/** Discriminates DataType alternatives. */
enum class TypeKind : std::uint8_t { Real, Int, Function };

/**
 * A SigT: bounded real (with optional mismatch), bounded int, or
 * lambda type, plus the SigTProg constness flag.
 */
class DataType
{
  public:
    /** real[lo, hi]; use +/-infinity for unbounded ends. */
    static DataType real(double lo, double hi);

    /** real[lo, hi] mm(s0, s1). */
    static DataType realMm(double lo, double hi, Mismatch mm);

    /** int[lo, hi]. */
    static DataType integer(std::int64_t lo, std::int64_t hi);

    /** lambd(params...). */
    static DataType function(std::vector<std::string> params);

    TypeKind kind() const { return kind_; }
    bool isReal() const { return kind_ == TypeKind::Real; }
    bool isInt() const { return kind_ == TypeKind::Int; }
    bool isFunction() const { return kind_ == TypeKind::Function; }

    double realLo() const { return realLo_; }
    double realHi() const { return realHi_; }
    std::int64_t intLo() const { return intLo_; }
    std::int64_t intHi() const { return intHi_; }
    const std::vector<std::string> &params() const { return params_; }
    int arity() const { return static_cast<int>(params_.size()); }

    const std::optional<Mismatch> &mismatch() const { return mismatch_; }
    bool hasMismatch() const { return mismatch_.has_value(); }

    bool isConst() const { return const_; }
    /** Returns a copy with the const flag set. */
    DataType asConst() const;

    /**
     * True if `v` belongs to this type: numeric widening of Int
     * literals into Real types is allowed; Real values never narrow to
     * Int; lambdas must match the declared arity; numerics must lie
     * within the declared range.
     */
    bool contains(const expr::Value &v) const;

    /**
     * Inheritance compatibility (paper §4.1.1): same kind and a value
     * range contained in the parent's range. Lambda types must agree
     * on arity. Mismatch annotations may differ (that is the point of
     * hardware extensions).
     */
    bool narrowerOrEqual(const DataType &parent) const;

    /** Source-like rendering, e.g.\ "real[0,inf] mm(0,0.1)". */
    std::string str() const;

    bool operator==(const DataType &other) const;

  private:
    TypeKind kind_ = TypeKind::Real;
    double realLo_ = 0.0;
    double realHi_ = 0.0;
    std::int64_t intLo_ = 0;
    std::int64_t intHi_ = 0;
    std::vector<std::string> params_;
    std::optional<Mismatch> mismatch_;
    bool const_ = false;
};

} // namespace ark::dg

#endif // ARK_DG_DATATYPE_H
