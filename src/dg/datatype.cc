#include "dg/datatype.h"

#include <cmath>
#include <limits>

#include "support/strings.h"

namespace ark::dg {

DataType
DataType::real(double lo, double hi)
{
    DataType t;
    t.kind_ = TypeKind::Real;
    t.realLo_ = lo;
    t.realHi_ = hi;
    return t;
}

DataType
DataType::realMm(double lo, double hi, Mismatch mm)
{
    DataType t = real(lo, hi);
    t.mismatch_ = mm;
    return t;
}

DataType
DataType::integer(std::int64_t lo, std::int64_t hi)
{
    DataType t;
    t.kind_ = TypeKind::Int;
    t.intLo_ = lo;
    t.intHi_ = hi;
    return t;
}

DataType
DataType::function(std::vector<std::string> params)
{
    DataType t;
    t.kind_ = TypeKind::Function;
    t.params_ = std::move(params);
    return t;
}

DataType
DataType::asConst() const
{
    DataType t = *this;
    t.const_ = true;
    return t;
}

bool
DataType::contains(const expr::Value &v) const
{
    switch (kind_) {
      case TypeKind::Real: {
        if (!v.isNumeric())
            return false;
        double x = v.asReal();
        return x >= realLo_ && x <= realHi_;
      }
      case TypeKind::Int: {
        if (!v.isInt())
            return false;
        std::int64_t x = v.asInt();
        return x >= intLo_ && x <= intHi_;
      }
      case TypeKind::Function:
        return v.isFunction() &&
               static_cast<int>(v.asFunction().params.size()) == arity();
    }
    return false;
}

bool
DataType::narrowerOrEqual(const DataType &parent) const
{
    if (kind_ != parent.kind_)
        return false;
    switch (kind_) {
      case TypeKind::Real:
        return realLo_ >= parent.realLo_ && realHi_ <= parent.realHi_;
      case TypeKind::Int:
        return intLo_ >= parent.intLo_ && intHi_ <= parent.intHi_;
      case TypeKind::Function:
        return arity() == parent.arity();
    }
    return false;
}

std::string
DataType::str() const
{
    using support::formatDouble;
    std::string out;
    switch (kind_) {
      case TypeKind::Real: {
        auto bound = [](double x) -> std::string {
            if (std::isinf(x))
                return x > 0 ? "inf" : "-inf";
            return formatDouble(x);
        };
        out = "real[" + bound(realLo_) + "," + bound(realHi_) + "]";
        if (mismatch_) {
            out += " mm(" + formatDouble(mismatch_->s0) + "," +
                   formatDouble(mismatch_->s1) + ")";
        }
        break;
      }
      case TypeKind::Int:
        out = "int[" + std::to_string(intLo_) + "," +
              std::to_string(intHi_) + "]";
        break;
      case TypeKind::Function:
        out = "lambd(" + support::join(params_, ",") + ")";
        break;
    }
    if (const_)
        out += " const";
    return out;
}

bool
DataType::operator==(const DataType &other) const
{
    if (kind_ != other.kind_ || const_ != other.const_ ||
        mismatch_ != other.mismatch_) {
        return false;
    }
    switch (kind_) {
      case TypeKind::Real:
        return realLo_ == other.realLo_ && realHi_ == other.realHi_;
      case TypeKind::Int:
        return intLo_ == other.intLo_ && intHi_ == other.intHi_;
      case TypeKind::Function:
        return params_ == other.params_;
    }
    return false;
}

} // namespace ark::dg
