#ifndef ARK_ENGINE_SESSION_H
#define ARK_ENGINE_SESSION_H

/**
 * @file
 * The engine session: one cache-backed front door for repeated
 * simulation workloads.
 *
 * Session unifies the two batch tiers behind content-addressed
 * artifacts (engine/cache.h):
 *
 *  - ODE side: compile() resolves a dynamical graph to a shared
 *    immutable OdeSystem through the ArtifactCache (ILP validation +
 *    compiler lowering run once per distinct content), and
 *    runEnsemble() integrates a batch of such systems on
 *    sim::BatchRunner::shared() — lane batching, step voting, and
 *    thread-pool reuse all apply as documented in sim/batch.h.
 *
 *  - SPICE side: runSweep() is the cache-backed twin of
 *    spice::TransientBatch::run. Instances group by structural
 *    fingerprint (verified with sharesStructure, so hash collisions
 *    cannot merge distinct structures), each group's factored
 *    TransientStepper operators are fetched from the cache under
 *    stepperKey(pattern, leader values, instance values, dt, finalH),
 *    and transients execute on the shared worker pool. A repeated
 *    sweep (challenge batteries, re-validation) hits warm factors:
 *    zero symbolic analyses, zero numeric refactorizations. Results
 *    are bit-identical to the uncached TransientBatch path because
 *    cached factors carry their pivot-source in the key — a member
 *    stepper is always the leader's factors numerically rebound to
 *    the member's values, exactly what the uncached path computes.
 *
 * Sessions are cheap value objects (an options struct and a cache
 * pointer); copy them freely. All methods are const and thread-safe.
 * SessionOptions::caching = false bypasses the cache entirely and
 * reproduces the historical per-call build paths bit-for-bit —
 * ablation benchmarks and differential tests toggle only that flag.
 */

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "engine/cache.h"
#include "sim/sim.h"
#include "spice/batch.h"
#include "support/ledger.h"
#include "support/telemetry.h"

namespace ark::engine {

/** Session configuration. */
struct SessionOptions
{
    /**
     * Serve artifacts through the ArtifactCache. Off rebuilds every
     * artifact per call (validate + compile, factor per sweep) —
     * results are bit-identical either way.
     */
    bool caching = true;

    /** Cache to use; nullptr selects ArtifactCache::shared(). */
    ArtifactCache *cache = nullptr;

    /**
     * Session-level flight recorder: every runEnsemble/runSweep
     * dispatched through this session appends its per-instance
     * provenance records here unless the per-run options carry their
     * own ledger. Observation-only (results are bit-identical with
     * and without it); the pointed-to ledger must outlive the
     * session's runs. Null = no session ledger.
     */
    telemetry::RunLedger *ledger = nullptr;
};

/**
 * Bounded retry-with-degradation policy for the supervised run
 * overloads (runEnsemble/runSweep with a policy argument).
 *
 * The retry ladder, in order, per failed instance:
 *
 *  - ODE ensembles: an instance whose first attempt ends in
 *    Diverged, Fault, or BudgetExhausted is re-run. Attempt 2 re-runs
 *    it scalar (laneBatching off) when retryScalar is set — the
 *    canonical recovery from a lane-block fault, bit-identical to a
 *    clean scalar run of that instance. Attempts 3..maxAttempts
 *    additionally degrade when relaxOnRetry is set: each further
 *    attempt multiplies dt by dtFactor and absTol/relTol by tolFactor
 *    (cumulatively). Cancelled and DeadlineExceeded instances are
 *    never retried — the caller asked for the stop.
 *
 *  - SPICE sweeps: an instance whose attempt ends in SingularMatrix
 *    falls back to the dense MnaSystem transient (denseFallback) —
 *    dense partial-pivoting LU succeeds on systems whose sparse
 *    refactorization collapsed; one whose attempt ends in
 *    NonfiniteState is re-run sparse with dt scaled by dtFactor per
 *    retry when relaxOnRetry is set. Cancelled / DeadlineExceeded /
 *    BadInput are never retried.
 *
 * maxAttempts = 1 disables the supervisor entirely: the supervised
 * overloads then behave bit-identically to the plain ones. Every
 * retry and fallback taken is recorded in RunReport — nothing
 * degrades silently.
 */
struct RunPolicy
{
    /** Total attempts per instance (first run included); >= 1. */
    int maxAttempts = 1;

    /** Ensemble: re-run failed instances with laneBatching off. */
    bool retryScalar = true;

    /** Enable the degradation rungs (dt/tolerance scaling). */
    bool relaxOnRetry = false;

    /** Step scale per degraded attempt (dt *= dtFactor). */
    double dtFactor = 0.5;

    /** Tolerance scale per degraded attempt (absTol/relTol *= ...). */
    double tolFactor = 10.0;

    /** Sweep: SingularMatrix failures re-run on the dense path. */
    bool denseFallback = true;
};

/**
 * Per-run provenance of a supervised run: which instances failed,
 * what was retried, what recovered. The counters account exactly for
 * every retry/fallback taken (one increment per re-run instance per
 * attempt), so a report with all-zero retry counters certifies the
 * run was clean.
 */
struct RunReport
{
    /** One recovery action applied to one instance on one attempt. */
    enum class Action : std::uint8_t {
        ScalarRetry,   ///< Re-run with laneBatching off.
        RelaxedRetry,  ///< Re-run with degraded dt/tolerances.
        DenseFallback, ///< Sparse SingularMatrix re-run densely.
    };

    /** History of one instance that failed its first attempt. */
    struct InstanceRecord
    {
        std::size_t index = 0; ///< Position in the input batch.
        int attempts = 1;      ///< Attempts consumed (first included).
        std::vector<Action> actions; ///< Ladder rungs taken, in order.
        bool recovered = false;      ///< Final attempt succeeded.
        std::string finalError; ///< Last failure message when not.
    };

    std::size_t instances = 0;            ///< Batch size.
    std::size_t firstAttemptFailures = 0; ///< Failed the initial run.
    std::size_t recovered = 0;            ///< Healthy after retries.
    std::size_t unrecovered = 0;  ///< Still failed after the ladder.
    std::size_t scalarRetries = 0;  ///< ScalarRetry actions taken.
    std::size_t relaxedRetries = 0; ///< RelaxedRetry actions taken.
    std::size_t denseFallbacks = 0; ///< DenseFallback actions taken.
    std::size_t budgetHits = 0;   ///< Final results with BudgetExhausted.
    std::size_t deadlineHits = 0; ///< Final results with DeadlineExceeded.
    std::size_t cancelled = 0;    ///< Final results with Cancelled.
    std::vector<InstanceRecord> records; ///< One per failed instance.

    /**
     * Flight recorder attached by the supervisor: per-instance,
     * per-attempt provenance records (tier, lane width, block, step
     * counts, cache outcome, retry action, structured failure),
     * exportable with RunLedger::json(). Created by the supervised
     * overloads when neither the run options nor the session carry
     * their own ledger; null when an external ledger captured the
     * records instead.
     */
    std::shared_ptr<telemetry::RunLedger> ledger;
};

/** What a cache-backed SPICE sweep did. */
struct SweepStats
{
    /** Distinct netlist structures (same notion as
     *  spice::TransientBatchStats::structureGroups). */
    std::size_t structureGroups = 0;
    /** Factored steppers served from the cache this sweep. */
    std::size_t factorHits = 0;
    /** Factored steppers built (symbolic or numeric factorization
     *  work) this sweep. Hit/miss counters stay 0 on the delegated
     *  paths (caching off, or the dense ablation), which do not
     *  address factors by content. */
    std::size_t factorMisses = 0;
};

class Session
{
  public:
    Session() = default;
    explicit Session(SessionOptions options) : options_(options) {}

    const SessionOptions &options() const { return options_; }

    /** The cache this session resolves artifacts against. */
    ArtifactCache &cache() const
    {
        return options_.cache ? *options_.cache
                              : ArtifactCache::shared();
    }

    /**
     * Validates and compiles `graph`, served through the cache (a hit
     * skips both steps). With caching off, always builds fresh.
     * @throws ark::support::SemaError / CompileError as the direct
     *         validate+compile path would.
     */
    SystemPtr compile(const dg::Graph &graph,
                      const lang::Language &lang) const;

    /**
     * Integrates a batch of shared systems over [t0, t1] on the
     * process-wide BatchRunner. Contract (ordering, determinism,
     * structured failures, lane batching) is sim::simulateEnsemble's.
     */
    std::vector<sim::SimResult> runEnsemble(
        const std::vector<SystemPtr> &systems, double t0, double t1,
        const sim::EnsembleOptions &options = sim::EnsembleOptions{}) const;

    /**
     * Supervised ensemble run: like runEnsemble above, but failed
     * instances climb the RunPolicy retry ladder (scalar re-run, then
     * optional dt/tolerance degradation) and `report`, when given,
     * receives exact per-instance provenance. Internal faults are
     * captured as structured AbortReason::Fault failures (and thus
     * become retryable) whenever policy.maxAttempts > 1; with
     * maxAttempts == 1 this overload is bit-identical to the plain
     * one. Results of instances that succeed on their first attempt
     * are bit-identical to an unsupervised run; recovered results
     * state exactly which degradations produced them.
     */
    std::vector<sim::SimResult> runEnsemble(
        const std::vector<SystemPtr> &systems, double t0, double t1,
        const sim::EnsembleOptions &options, const RunPolicy &policy,
        RunReport *report = nullptr) const;

    /**
     * Batched SPICE transient sweep over [t0, t1] with step dt from
     * zero initial states, sampling every step — the cache-backed
     * equivalent of spice::TransientBatch::run with identical result
     * semantics (positional ordering, structured per-instance
     * failures, SimError on batch-level misconfiguration) and
     * bit-identical samples. options.sparse = false delegates to the
     * dense ablation path (never cached — dense factorizations are
     * not reusable artifacts).
     */
    std::vector<spice::TransientResult>
    runSweep(const std::vector<const spice::Netlist *> &netlists,
             double t0, double t1, double dt,
             const spice::TransientBatchOptions &options =
                 spice::TransientBatchOptions{},
             SweepStats *stats = nullptr) const;

    /**
     * Supervised sweep: like runSweep above, but SingularMatrix
     * failures fall back to the dense transient path and (with
     * relaxOnRetry) NonfiniteState failures re-run sparse at a
     * degraded dt, per RunPolicy. `report`, when given, receives
     * exact per-instance provenance. With policy.maxAttempts == 1
     * this overload is bit-identical to the plain one.
     */
    std::vector<spice::TransientResult>
    runSweep(const std::vector<const spice::Netlist *> &netlists,
             double t0, double t1, double dt,
             const spice::TransientBatchOptions &options,
             const RunPolicy &policy, RunReport *report = nullptr,
             SweepStats *stats = nullptr) const;

    /**
     * Snapshot of the process-wide telemetry registry, with this
     * session's cache residency published to the ark.cache.*_cached
     * gauges first. Values are zero until
     * telemetry::setMetricsEnabled(true); see support/telemetry.h for
     * the naming scheme and MetricsSnapshot::str()/json() for the
     * dump formats.
     */
    telemetry::MetricsSnapshot metricsSnapshot() const;

  private:
    SessionOptions options_;
};

} // namespace ark::engine

#endif // ARK_ENGINE_SESSION_H
