#ifndef ARK_ENGINE_SESSION_H
#define ARK_ENGINE_SESSION_H

/**
 * @file
 * The engine session: one cache-backed front door for repeated
 * simulation workloads.
 *
 * Session unifies the two batch tiers behind content-addressed
 * artifacts (engine/cache.h):
 *
 *  - ODE side: compile() resolves a dynamical graph to a shared
 *    immutable OdeSystem through the ArtifactCache (ILP validation +
 *    compiler lowering run once per distinct content), and
 *    runEnsemble() integrates a batch of such systems on
 *    sim::BatchRunner::shared() — lane batching, step voting, and
 *    thread-pool reuse all apply as documented in sim/batch.h.
 *
 *  - SPICE side: runSweep() is the cache-backed twin of
 *    spice::TransientBatch::run. Instances group by structural
 *    fingerprint (verified with sharesStructure, so hash collisions
 *    cannot merge distinct structures), each group's factored
 *    TransientStepper operators are fetched from the cache under
 *    stepperKey(pattern, leader values, instance values, dt, finalH),
 *    and transients execute on the shared worker pool. A repeated
 *    sweep (challenge batteries, re-validation) hits warm factors:
 *    zero symbolic analyses, zero numeric refactorizations. Results
 *    are bit-identical to the uncached TransientBatch path because
 *    cached factors carry their pivot-source in the key — a member
 *    stepper is always the leader's factors numerically rebound to
 *    the member's values, exactly what the uncached path computes.
 *
 * Sessions are cheap value objects (an options struct and a cache
 * pointer); copy them freely. All methods are const and thread-safe.
 * SessionOptions::caching = false bypasses the cache entirely and
 * reproduces the historical per-call build paths bit-for-bit —
 * ablation benchmarks and differential tests toggle only that flag.
 */

#include <vector>

#include "engine/cache.h"
#include "sim/sim.h"
#include "spice/batch.h"

namespace ark::engine {

/** Session configuration. */
struct SessionOptions
{
    /**
     * Serve artifacts through the ArtifactCache. Off rebuilds every
     * artifact per call (validate + compile, factor per sweep) —
     * results are bit-identical either way.
     */
    bool caching = true;

    /** Cache to use; nullptr selects ArtifactCache::shared(). */
    ArtifactCache *cache = nullptr;
};

/** What a cache-backed SPICE sweep did. */
struct SweepStats
{
    /** Distinct netlist structures (same notion as
     *  spice::TransientBatchStats::structureGroups). */
    std::size_t structureGroups = 0;
    /** Factored steppers served from the cache this sweep. */
    std::size_t factorHits = 0;
    /** Factored steppers built (symbolic or numeric factorization
     *  work) this sweep. Hit/miss counters stay 0 on the delegated
     *  paths (caching off, or the dense ablation), which do not
     *  address factors by content. */
    std::size_t factorMisses = 0;
};

class Session
{
  public:
    Session() = default;
    explicit Session(SessionOptions options) : options_(options) {}

    const SessionOptions &options() const { return options_; }

    /** The cache this session resolves artifacts against. */
    ArtifactCache &cache() const
    {
        return options_.cache ? *options_.cache
                              : ArtifactCache::shared();
    }

    /**
     * Validates and compiles `graph`, served through the cache (a hit
     * skips both steps). With caching off, always builds fresh.
     * @throws ark::support::SemaError / CompileError as the direct
     *         validate+compile path would.
     */
    SystemPtr compile(const dg::Graph &graph,
                      const lang::Language &lang) const;

    /**
     * Integrates a batch of shared systems over [t0, t1] on the
     * process-wide BatchRunner. Contract (ordering, determinism,
     * structured failures, lane batching) is sim::simulateEnsemble's.
     */
    std::vector<sim::SimResult> runEnsemble(
        const std::vector<SystemPtr> &systems, double t0, double t1,
        const sim::EnsembleOptions &options = sim::EnsembleOptions{}) const;

    /**
     * Batched SPICE transient sweep over [t0, t1] with step dt from
     * zero initial states, sampling every step — the cache-backed
     * equivalent of spice::TransientBatch::run with identical result
     * semantics (positional ordering, structured per-instance
     * failures, SimError on batch-level misconfiguration) and
     * bit-identical samples. options.sparse = false delegates to the
     * dense ablation path (never cached — dense factorizations are
     * not reusable artifacts).
     */
    std::vector<spice::TransientResult>
    runSweep(const std::vector<const spice::Netlist *> &netlists,
             double t0, double t1, double dt,
             const spice::TransientBatchOptions &options =
                 spice::TransientBatchOptions{},
             SweepStats *stats = nullptr) const;

  private:
    SessionOptions options_;
};

} // namespace ark::engine

#endif // ARK_ENGINE_SESSION_H
