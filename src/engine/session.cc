#include "engine/session.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "compiler/compiler.h"
#include "sim/batch.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/watchdog.h"
#include "validator/validator.h"

namespace ark::engine {

using support::cat;
using support::SimError;

namespace {

bool
deadlinePassed(
    const std::optional<std::chrono::steady_clock::time_point> &deadline)
{
    return deadline &&
           std::chrono::steady_clock::now() >= *deadline;
}

/** Serialized (completed, total) dispatcher; free when callback empty
 *  (same contract as the TransientBatch-internal ticker — the cached
 *  sweep must report progress identically to the uncached one). */
class ProgressTicker
{
  public:
    ProgressTicker(
        const std::function<void(std::size_t, std::size_t)> &callback,
        std::size_t total, telemetry::StallWatchdog::Run *watchdog)
        : callback_(callback), total_(total), watchdog_(watchdog)
    {
    }

    void
    tick()
    {
        if (watchdog_ != nullptr)
            watchdog_->heartbeat();
        if (!callback_)
            return;
        std::lock_guard lock(mutex_);
        callback_(++completed_, total_);
    }

  private:
    const std::function<void(std::size_t, std::size_t)> &callback_;
    std::size_t total_;
    telemetry::StallWatchdog::Run *watchdog_;
    std::mutex mutex_;
    std::size_t completed_ = 0;
};

/** True when a supervised ensemble retry can change the outcome. */
bool
retryableSimFailure(const sim::SimFailure &failure)
{
    return failure.reason == sim::AbortReason::Diverged ||
           failure.reason == sim::AbortReason::Fault ||
           failure.reason == sim::AbortReason::BudgetExhausted;
}

/** Tallies the terminal failure mix of a finished batch. */
void
countSimOutcomes(const std::vector<sim::SimResult> &results,
                 RunReport &report)
{
    for (const sim::SimResult &result : results) {
        if (!result.failure)
            continue;
        switch (result.failure->reason) {
        case sim::AbortReason::BudgetExhausted: ++report.budgetHits; break;
        case sim::AbortReason::DeadlineExceeded:
            ++report.deadlineHits;
            break;
        case sim::AbortReason::Cancelled: ++report.cancelled; break;
        default: break;
        }
    }
}

void
countSweepOutcomes(const std::vector<spice::TransientResult> &results,
                   RunReport &report)
{
    for (const spice::TransientResult &result : results) {
        if (!result.failure)
            continue;
        switch (result.failure->reason) {
        case spice::TransientAbort::DeadlineExceeded:
            ++report.deadlineHits;
            break;
        case spice::TransientAbort::Cancelled: ++report.cancelled; break;
        default: break;
        }
    }
}

/**
 * Publishes a supervised run's final tallies to the registry. The
 * report is the source of truth (exactly one increment per action
 * taken), so the registry counters inherit its definitions.
 */
void
flushReportCounters(const RunReport &report)
{
    if (!telemetry::metricsEnabled())
        return;
    static telemetry::Counter &scalarRetries =
        telemetry::Registry::shared().counter(
            "ark.session.scalar_retries");
    static telemetry::Counter &relaxedRetries =
        telemetry::Registry::shared().counter(
            "ark.session.relaxed_retries");
    static telemetry::Counter &denseFallbacks =
        telemetry::Registry::shared().counter(
            "ark.session.dense_fallbacks");
    static telemetry::Counter &budgetHits =
        telemetry::Registry::shared().counter("ark.session.budget_hits");
    static telemetry::Counter &deadlineHits =
        telemetry::Registry::shared().counter(
            "ark.session.deadline_hits");
    static telemetry::Counter &cancelled =
        telemetry::Registry::shared().counter("ark.session.cancelled");
    scalarRetries.add(report.scalarRetries);
    relaxedRetries.add(report.relaxedRetries);
    denseFallbacks.add(report.denseFallbacks);
    budgetHits.add(report.budgetHits);
    deadlineHits.add(report.deadlineHits);
    cancelled.add(report.cancelled);
}

} // namespace

telemetry::MetricsSnapshot
Session::metricsSnapshot() const
{
    telemetry::Registry &registry = telemetry::Registry::shared();
    // Residency gauges come from CacheStats at snapshot time (the
    // cache cannot publish sizes itself without registry writes under
    // its own lock on every mutation).
    static telemetry::Gauge &systemsCached =
        registry.gauge("ark.cache.systems_cached");
    static telemetry::Gauge &steppersCached =
        registry.gauge("ark.cache.steppers_cached");
    const CacheStats cacheStats = cache().stats();
    systemsCached.set(static_cast<double>(cacheStats.systemsCached));
    steppersCached.set(static_cast<double>(cacheStats.steppersCached));
    return registry.snapshot();
}

SystemPtr
Session::compile(const dg::Graph &graph, const lang::Language &lang) const
{
    if (!options_.caching) {
        validator::validateOrThrow(graph, lang);
        return std::make_shared<const compiler::OdeSystem>(
            compiler::compile(graph, lang));
    }
    return cache().system(graph, lang);
}

std::vector<sim::SimResult>
Session::runEnsemble(const std::vector<SystemPtr> &systems, double t0,
                     double t1, const sim::EnsembleOptions &options) const
{
    static telemetry::Histogram &ensembleNs =
        telemetry::Registry::shared().histogram("ark.session.ensemble_ns");
    telemetry::ScopedSpan span("ark.session.ensemble", systems.size());
    telemetry::ScopedTimer timer(ensembleNs);
    std::vector<const compiler::OdeSystem *> pointers;
    pointers.reserve(systems.size());
    for (const SystemPtr &system : systems) {
        support::panicIf(system == nullptr,
                         "Session::runEnsemble: null system");
        pointers.push_back(system.get());
    }
    // The session-level flight recorder applies unless the per-run
    // options brought their own (observation-only either way).
    sim::EnsembleOptions effective = options;
    if (effective.ledger == nullptr)
        effective.ledger = options_.ledger;
    return sim::simulateEnsemble(pointers, t0, t1, effective);
}

std::vector<spice::TransientResult>
Session::runSweep(const std::vector<const spice::Netlist *> &netlists,
                  double t0, double t1, double dt,
                  const spice::TransientBatchOptions &options,
                  SweepStats *stats) const
{
    static telemetry::Histogram &sweepNs =
        telemetry::Registry::shared().histogram("ark.session.sweep_ns");
    telemetry::ScopedSpan span("ark.session.sweep", netlists.size());
    telemetry::ScopedTimer timer(sweepNs);
    if (stats)
        *stats = SweepStats{};
    // The session-level flight recorder applies unless the per-run
    // options brought their own (observation-only either way).
    spice::TransientBatchOptions effective = options;
    if (effective.ledger == nullptr)
        effective.ledger = options_.ledger;
    if (!options_.caching || !effective.sparse) {
        // Dense path and the caching=false ablation delegate to the
        // in-sweep engine: factor sharing within the sweep (sparse)
        // but nothing carried across sweeps.
        spice::TransientBatch batch(effective);
        spice::TransientBatchStats batchStats;
        std::vector<spice::TransientResult> results =
            batch.run(netlists, t0, t1, dt, &batchStats);
        if (stats)
            stats->structureGroups = batchStats.structureGroups;
        return results;
    }

    if (dt <= 0.0)
        throw SimError(cat("Session sweep: dt must be positive, got ",
                           dt));
    if (t1 < t0)
        throw SimError(cat("Session sweep: t1 (", t1, ") precedes t0 (",
                           t0, ")"));
    const std::size_t count = netlists.size();
    std::vector<spice::TransientResult> results(count);
    if (count == 0)
        return results;
    for (const spice::Netlist *netlist : netlists)
        support::panicIf(netlist == nullptr,
                         "Session sweep: null netlist");

    // Phase 1: assemble + fingerprint every netlist. Assembly rejects
    // land as structured BadInput failures, exactly like
    // TransientBatch.
    std::vector<std::unique_ptr<spice::SparseMnaSystem>> systems(count);
    std::vector<MnaFingerprint> fps(count);
    for (std::size_t i = 0; i < count; ++i) {
        try {
            systems[i] =
                std::make_unique<spice::SparseMnaSystem>(*netlists[i]);
            fps[i] = fingerprintMna(*systems[i]);
        } catch (const support::ArkError &error) {
            results[i].failure = spice::detail::errorFailure(error, t0);
        }
    }

    // Phase 2: group by structural fingerprint — O(n) against the
    // quadratic sharesStructure scan — re-verifying each bucket match
    // with sharesStructure so a hash collision can only split a
    // group, never merge distinct structures.
    std::vector<std::size_t> leaderOf(count, count);
    std::vector<std::size_t> leaders;
    std::unordered_map<Fingerprint, std::vector<std::size_t>,
                       FingerprintHash>
        buckets;
    for (std::size_t i = 0; i < count; ++i) {
        if (!systems[i])
            continue;
        std::vector<std::size_t> &bucket = buckets[fps[i].pattern];
        for (std::size_t leader : bucket) {
            if (systems[leader]->sharesStructure(*systems[i])) {
                leaderOf[i] = leader;
                break;
            }
        }
        if (leaderOf[i] == count) {
            leaders.push_back(i);
            bucket.push_back(i);
            leaderOf[i] = i;
        }
    }
    if (stats)
        stats->structureGroups = leaders.size();

    // Phase 3 + 4: resolve each group's factored operators through
    // the artifact cache and run the transients on the shared pool.
    // Leader resolution is lazy under a per-leader once-flag so
    // heterogeneous sweeps factor concurrently; a leader whose values
    // are singular leaves no shared stepper and members fall back to
    // standalone (self-pivot-sourced, still cached) factorizations.
    const double finalH = spice::finalStepSize(t0, t1, dt);
    ArtifactCache &artifacts = cache();
    std::atomic<std::size_t> factorHits{0};
    std::atomic<std::size_t> factorMisses{0};
    std::vector<StepperPtr> leaderStepper(count);
    std::vector<std::unique_ptr<std::once_flag>> leaderOnce(count);
    for (std::size_t leader : leaders)
        leaderOnce[leader] = std::make_unique<std::once_flag>();

    // Per-instance cache provenance for the flight recorder. A member
    // that shares its leader's factors outright inherits the leader's
    // outcome — the factors it runs with were resolved once for the
    // whole group. 0 = no cache consult (slot failed before lookup).
    constexpr std::uint8_t kNoLookup = 0, kHit = 1, kMiss = 2;
    std::vector<std::uint8_t> cacheOutcome(
        effective.ledger != nullptr ? count : 0, kNoLookup);
    std::vector<std::uint8_t> leaderOutcome(
        effective.ledger != nullptr ? count : 0, kNoLookup);

    auto cachedStepper = [&](const Fingerprint &key,
                             const std::function<StepperPtr()> &build,
                             std::uint8_t *outcome) {
        bool hit = false;
        StepperPtr stepper = artifacts.stepper(key, build, &hit);
        if (hit)
            ++factorHits;
        else
            ++factorMisses;
        if (outcome != nullptr)
            *outcome = hit ? kHit : kMiss;
        return stepper;
    };
    auto outcomeSlot = [&](std::vector<std::uint8_t> &slots,
                           std::size_t i) -> std::uint8_t * {
        return effective.ledger != nullptr ? &slots[i] : nullptr;
    };

    std::vector<std::exception_ptr> errors(count);
    telemetry::StallWatchdog::Run watchdogRun("spice_sweep", count);
    ProgressTicker progress(effective.progress, count, &watchdogRun);
    const spice::TransientControl control{effective.stop,
                                          effective.deadline};
    const std::uint64_t ledgerRun =
        effective.ledger != nullptr
            ? effective.ledger->beginRun(
                  telemetry::RunLedger::Workload::Spice, count)
            : 0;
    sim::BatchRunner::shared().parallelFor(
        count, effective.numThreads, [&](std::size_t i) {
            if (results[i].failure.has_value()) {
                progress.tick(); // assembly already failed
                return;
            }
            if (effective.stop.stop_requested()) {
                // Skipped before starting: no samples at all.
                results[i].failure = spice::detail::cancelledFailure(t0, 0);
                progress.tick();
                return;
            }
            if (deadlinePassed(effective.deadline)) {
                results[i].failure = spice::detail::deadlineFailure(t0, 0);
                progress.tick();
                return;
            }
            const spice::SparseMnaSystem &system = *systems[i];
            const std::size_t leader = leaderOf[i];
            try {
                std::call_once(*leaderOnce[leader], [&] {
                    try {
                        leaderStepper[leader] = cachedStepper(
                            stepperKey(fps[leader], fps[leader].values,
                                       fps[leader].values, dt, finalH),
                            [&]() -> StepperPtr {
                                auto built = std::make_shared<
                                    spice::TransientStepper>(
                                    *systems[leader], dt);
                                built->prepareFinalStep(*systems[leader],
                                                        finalH);
                                return built;
                            },
                            outcomeSlot(leaderOutcome, leader));
                    } catch (...) {
                        // Leader factorization failed; members factor
                        // standalone and report whatever recurs.
                    }
                });
                StepperPtr stepper;
                if (leaderStepper[leader] != nullptr &&
                    system.sharesMatrixValues(*systems[leader])) {
                    // Bit-identical matrices: share the leader's
                    // factors outright.
                    stepper = leaderStepper[leader];
                    if (effective.ledger != nullptr)
                        cacheOutcome[i] = leaderOutcome[leader];
                } else if (leaderStepper[leader] != nullptr) {
                    // Same structure, different values: the leader's
                    // pivot order numerically rebound to this
                    // instance — the exact factors TransientBatch
                    // computes, addressed by (pattern, leader values,
                    // instance values).
                    stepper = cachedStepper(
                        stepperKey(fps[i], fps[leader].values,
                                   fps[i].values, dt, finalH),
                        [&]() -> StepperPtr {
                            auto rebound = std::make_shared<
                                spice::TransientStepper>(
                                *leaderStepper[leader]);
                            rebound->rebind(system);
                            return rebound;
                        },
                        outcomeSlot(cacheOutcome, i));
                } else {
                    stepper = cachedStepper(
                        stepperKey(fps[i], fps[i].values, fps[i].values,
                                   dt, finalH),
                        [&]() -> StepperPtr {
                            auto built = std::make_shared<
                                spice::TransientStepper>(system, dt);
                            built->prepareFinalStep(system, finalH);
                            return built;
                        },
                        outcomeSlot(cacheOutcome, i));
                }
                results[i] = stepper->run(system, t0, t1, {}, control);
            } catch (const support::ArkError &error) {
                results[i].failure =
                    spice::detail::errorFailure(error, t0);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            progress.tick();
        });
    if (effective.ledger != nullptr) {
        // Same flush point and record shape as TransientBatch's
        // sparse path, plus the cache outcome only this path has.
        std::vector<std::size_t> groupSize(count, 0);
        for (std::size_t i = 0; i < count; ++i)
            if (leaderOf[i] < count)
                ++groupSize[leaderOf[i]];
        for (std::size_t i = 0; i < count; ++i) {
            if (errors[i])
                continue;
            const spice::TransientResult &result = results[i];
            telemetry::RunLedger::Record record;
            record.runId = ledgerRun;
            record.index = i;
            record.workload = telemetry::RunLedger::Workload::Spice;
            record.tier = telemetry::RunLedger::Tier::Sparse;
            record.blockId = leaderOf[i] < count ? leaderOf[i] : i;
            record.lanes =
                leaderOf[i] < count ? groupSize[leaderOf[i]] : 1;
            record.stepsAccepted =
                result.ok()
                    ? (result.size() > 0 ? result.size() - 1 : 0)
                    : result.failure->step;
            record.cache =
                cacheOutcome[i] == kHit
                    ? telemetry::RunLedger::CacheOutcome::Hit
                    : cacheOutcome[i] == kMiss
                          ? telemetry::RunLedger::CacheOutcome::Miss
                          : telemetry::RunLedger::CacheOutcome::None;
            record.ok = result.ok();
            if (result.failure.has_value()) {
                record.failureReason =
                    spice::transientAbortName(result.failure->reason);
                record.failureMessage = result.failure->message;
            }
            effective.ledger->append(std::move(record));
        }
    }
    for (std::exception_ptr &error : errors)
        if (error)
            std::rethrow_exception(error);

    if (stats) {
        stats->factorHits = factorHits.load();
        stats->factorMisses = factorMisses.load();
    }
    return results;
}

std::vector<sim::SimResult>
Session::runEnsemble(const std::vector<SystemPtr> &systems, double t0,
                     double t1, const sim::EnsembleOptions &options,
                     const RunPolicy &policy, RunReport *report) const
{
    RunReport local;
    RunReport &rep = report ? *report : local;
    rep = RunReport{};
    rep.instances = systems.size();

    // Flight-recorder resolution: an explicitly configured ledger
    // (run options first, then the session) captures the records;
    // otherwise a reporting supervised run gets its own, attached to
    // the report so callers can export it without pre-wiring one.
    sim::EnsembleOptions opts = options;
    if (opts.ledger == nullptr)
        opts.ledger = options_.ledger;
    if (opts.ledger == nullptr && report != nullptr) {
        rep.ledger = std::make_shared<telemetry::RunLedger>();
        opts.ledger = rep.ledger.get();
    }
    telemetry::RunLedger *ledger = opts.ledger;

    if (policy.maxAttempts <= 1) {
        // Supervisor off: bit-identical to the plain overload,
        // including the exception-rethrow contract.
        std::vector<sim::SimResult> results =
            runEnsemble(systems, t0, t1, opts);
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (results[i].ok())
                continue;
            ++rep.firstAttemptFailures;
            ++rep.unrecovered;
            RunReport::InstanceRecord record;
            record.index = i;
            record.finalError = results[i].failure->message;
            rep.records.push_back(std::move(record));
        }
        countSimOutcomes(results, rep);
        flushReportCounters(rep);
        return results;
    }

    // First attempt: the normal batch, but with faults captured as
    // structured failures so they become retryable data.
    sim::EnsembleOptions firstOptions = opts;
    firstOptions.structuredFaults = true;
    std::vector<sim::SimResult> results =
        runEnsemble(systems, t0, t1, firstOptions);

    // One record per first-attempt failure; only the retryable subset
    // climbs the ladder.
    std::vector<std::size_t> recordOf(results.size(), results.size());
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].ok())
            continue;
        ++rep.firstAttemptFailures;
        recordOf[i] = rep.records.size();
        RunReport::InstanceRecord record;
        record.index = i;
        rep.records.push_back(std::move(record));
        if (retryableSimFailure(*results[i].failure))
            pending.push_back(i);
    }

    const double baseDt =
        options.sim.dt > 0.0 ? options.sim.dt : (t1 - t0) / 1000.0;
    for (int attempt = 2;
         attempt <= policy.maxAttempts && !pending.empty(); ++attempt) {
        if (options.stop.stop_requested() ||
            deadlinePassed(options.deadline))
            break; // the caller asked for the stop: no more attempts

        // Rung 0 is the pure scalar re-run (when retryScalar); each
        // further rung degrades dt and tolerances cumulatively.
        const int rung = policy.retryScalar ? attempt - 2 : attempt - 1;
        const bool relaxed = policy.relaxOnRetry && rung >= 1;
        sim::EnsembleOptions retryOptions = opts;
        retryOptions.structuredFaults = true;
        retryOptions.progress = {}; // progress ticked on attempt 1
        // Retry batches record into a scratch ledger whose records are
        // remapped below: the batch engine indexes the compacted retry
        // batch, the ledger speaks original batch positions.
        telemetry::RunLedger retryLedger;
        retryOptions.ledger = ledger != nullptr ? &retryLedger : nullptr;
        if (policy.retryScalar)
            retryOptions.laneBatching = false;
        if (relaxed) {
            double dtScale = 1.0, tolScale = 1.0;
            for (int r = 0; r < rung; ++r) {
                dtScale *= policy.dtFactor;
                tolScale *= policy.tolFactor;
            }
            retryOptions.sim.dt = baseDt * dtScale;
            retryOptions.sim.absTol = options.sim.absTol * tolScale;
            retryOptions.sim.relTol = options.sim.relTol * tolScale;
        }

        std::vector<SystemPtr> retrySystems;
        retrySystems.reserve(pending.size());
        for (std::size_t index : pending)
            retrySystems.push_back(systems[index]);
        std::vector<sim::SimResult> retried =
            runEnsemble(retrySystems, t0, t1, retryOptions);

        if (ledger != nullptr) {
            // Re-home the scratch records: original batch position,
            // the main run's id, and the rung that produced them.
            // Tier/width/block provenance stays as the engine wrote
            // it.
            for (telemetry::RunLedger::Record rec :
                 retryLedger.records()) {
                rec.runId = ledger->lastRunId();
                rec.index = pending[rec.index];
                rec.attempt = attempt;
                rec.action =
                    relaxed
                        ? telemetry::RunLedger::RetryAction::RelaxedRetry
                        : telemetry::RunLedger::RetryAction::ScalarRetry;
                ledger->append(std::move(rec));
            }
        }

        std::vector<std::size_t> still;
        for (std::size_t j = 0; j < pending.size(); ++j) {
            const std::size_t index = pending[j];
            RunReport::InstanceRecord &record =
                rep.records[recordOf[index]];
            ++record.attempts;
            if (relaxed) {
                record.actions.push_back(
                    RunReport::Action::RelaxedRetry);
                ++rep.relaxedRetries;
            } else {
                record.actions.push_back(RunReport::Action::ScalarRetry);
                ++rep.scalarRetries;
            }
            results[index] = std::move(retried[j]);
            if (!results[index].ok() &&
                retryableSimFailure(*results[index].failure))
                still.push_back(index);
        }
        pending = std::move(still);
    }

    for (RunReport::InstanceRecord &record : rep.records) {
        record.recovered = results[record.index].ok();
        if (record.recovered)
            ++rep.recovered;
        else {
            ++rep.unrecovered;
            record.finalError = results[record.index].failure->message;
        }
    }
    countSimOutcomes(results, rep);
    flushReportCounters(rep);
    return results;
}

std::vector<spice::TransientResult>
Session::runSweep(const std::vector<const spice::Netlist *> &netlists,
                  double t0, double t1, double dt,
                  const spice::TransientBatchOptions &options,
                  const RunPolicy &policy, RunReport *report,
                  SweepStats *stats) const
{
    RunReport local;
    RunReport &rep = report ? *report : local;
    rep = RunReport{};
    rep.instances = netlists.size();

    // Flight-recorder resolution: same precedence as the supervised
    // ensemble (run options, session, then a report-owned ledger).
    spice::TransientBatchOptions opts = options;
    if (opts.ledger == nullptr)
        opts.ledger = options_.ledger;
    if (opts.ledger == nullptr && report != nullptr) {
        rep.ledger = std::make_shared<telemetry::RunLedger>();
        opts.ledger = rep.ledger.get();
    }
    telemetry::RunLedger *ledger = opts.ledger;

    std::vector<spice::TransientResult> results =
        runSweep(netlists, t0, t1, dt, opts, stats);

    if (policy.maxAttempts <= 1) {
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (!results[i].failure)
                continue;
            ++rep.firstAttemptFailures;
            ++rep.unrecovered;
            RunReport::InstanceRecord record;
            record.index = i;
            record.finalError = results[i].failure->message;
            rep.records.push_back(std::move(record));
        }
        countSweepOutcomes(results, rep);
        flushReportCounters(rep);
        return results;
    }

    // SingularMatrix falls back to the dense transient (partial
    // pivoting succeeds where the sparse static-order refactorization
    // collapsed); NonfiniteState re-runs sparse at a degraded dt when
    // relaxOnRetry allows it. Retries are rare, so they run serially
    // on the calling thread.
    auto sweepRetryable = [&](const spice::TransientFailure &failure) {
        if (failure.reason == spice::TransientAbort::SingularMatrix)
            return policy.denseFallback;
        if (failure.reason == spice::TransientAbort::NonfiniteState)
            return policy.relaxOnRetry;
        return false;
    };

    std::vector<std::size_t> recordOf(results.size(), results.size());
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].failure)
            continue;
        ++rep.firstAttemptFailures;
        recordOf[i] = rep.records.size();
        RunReport::InstanceRecord record;
        record.index = i;
        rep.records.push_back(std::move(record));
        if (sweepRetryable(*results[i].failure))
            pending.push_back(i);
    }

    const spice::TransientControl control{options.stop, options.deadline};
    for (int attempt = 2;
         attempt <= policy.maxAttempts && !pending.empty(); ++attempt) {
        if (options.stop.stop_requested() ||
            deadlinePassed(options.deadline))
            break;
        double relaxedDt = dt;
        for (int r = 0; r < attempt - 1; ++r)
            relaxedDt *= policy.dtFactor;

        std::vector<std::size_t> still;
        for (std::size_t index : pending) {
            RunReport::InstanceRecord &record =
                rep.records[recordOf[index]];
            ++record.attempts;
            const spice::TransientAbort reason =
                results[index].failure->reason;
            const bool denseRetry =
                reason == spice::TransientAbort::SingularMatrix;
            try {
                if (denseRetry) {
                    record.actions.push_back(
                        RunReport::Action::DenseFallback);
                    ++rep.denseFallbacks;
                    spice::MnaSystem dense(*netlists[index]);
                    results[index] = spice::transient(dense, t0, t1, dt,
                                                      {}, control);
                } else {
                    record.actions.push_back(
                        RunReport::Action::RelaxedRetry);
                    ++rep.relaxedRetries;
                    spice::SparseMnaSystem sparse(*netlists[index]);
                    results[index] = spice::transient(
                        sparse, t0, t1, relaxedDt, {}, control);
                }
            } catch (const support::ArkError &error) {
                results[index].failure =
                    spice::detail::errorFailure(error, t0);
            }
            if (ledger != nullptr) {
                // Serial retries bypass the batch engines, so the
                // supervisor writes their records itself: standalone
                // block, no cache consult, tier per the rung taken.
                const spice::TransientResult &result = results[index];
                telemetry::RunLedger::Record rec;
                rec.runId = ledger->lastRunId();
                rec.index = index;
                rec.workload = telemetry::RunLedger::Workload::Spice;
                rec.tier = denseRetry
                               ? telemetry::RunLedger::Tier::Dense
                               : telemetry::RunLedger::Tier::Sparse;
                rec.blockId = index;
                rec.attempt = attempt;
                rec.action =
                    denseRetry
                        ? telemetry::RunLedger::RetryAction::DenseFallback
                        : telemetry::RunLedger::RetryAction::RelaxedRetry;
                rec.stepsAccepted =
                    result.ok()
                        ? (result.size() > 0 ? result.size() - 1 : 0)
                        : result.failure->step;
                rec.ok = result.ok();
                if (result.failure.has_value()) {
                    rec.failureReason = spice::transientAbortName(
                        result.failure->reason);
                    rec.failureMessage = result.failure->message;
                }
                ledger->append(std::move(rec));
            }
            if (results[index].failure &&
                sweepRetryable(*results[index].failure))
                still.push_back(index);
        }
        pending = std::move(still);
    }

    for (RunReport::InstanceRecord &record : rep.records) {
        record.recovered = !results[record.index].failure.has_value();
        if (record.recovered)
            ++rep.recovered;
        else {
            ++rep.unrecovered;
            record.finalError = results[record.index].failure->message;
        }
    }
    countSweepOutcomes(results, rep);
    flushReportCounters(rep);
    return results;
}

} // namespace ark::engine
