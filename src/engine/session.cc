#include "engine/session.h"

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "compiler/compiler.h"
#include "sim/batch.h"
#include "support/error.h"
#include "support/logging.h"
#include "validator/validator.h"

namespace ark::engine {

using support::cat;
using support::SimError;

SystemPtr
Session::compile(const dg::Graph &graph, const lang::Language &lang) const
{
    if (!options_.caching) {
        validator::validateOrThrow(graph, lang);
        return std::make_shared<const compiler::OdeSystem>(
            compiler::compile(graph, lang));
    }
    return cache().system(graph, lang);
}

std::vector<sim::SimResult>
Session::runEnsemble(const std::vector<SystemPtr> &systems, double t0,
                     double t1, const sim::EnsembleOptions &options) const
{
    std::vector<const compiler::OdeSystem *> pointers;
    pointers.reserve(systems.size());
    for (const SystemPtr &system : systems) {
        support::panicIf(system == nullptr,
                         "Session::runEnsemble: null system");
        pointers.push_back(system.get());
    }
    return sim::simulateEnsemble(pointers, t0, t1, options);
}

std::vector<spice::TransientResult>
Session::runSweep(const std::vector<const spice::Netlist *> &netlists,
                  double t0, double t1, double dt,
                  const spice::TransientBatchOptions &options,
                  SweepStats *stats) const
{
    if (stats)
        *stats = SweepStats{};
    if (!options_.caching || !options.sparse) {
        // Dense path and the caching=false ablation delegate to the
        // in-sweep engine: factor sharing within the sweep (sparse)
        // but nothing carried across sweeps.
        spice::TransientBatch batch(options);
        spice::TransientBatchStats batchStats;
        std::vector<spice::TransientResult> results =
            batch.run(netlists, t0, t1, dt, &batchStats);
        if (stats)
            stats->structureGroups = batchStats.structureGroups;
        return results;
    }

    if (dt <= 0.0)
        throw SimError(cat("Session sweep: dt must be positive, got ",
                           dt));
    if (t1 < t0)
        throw SimError(cat("Session sweep: t1 (", t1, ") precedes t0 (",
                           t0, ")"));
    const std::size_t count = netlists.size();
    std::vector<spice::TransientResult> results(count);
    if (count == 0)
        return results;
    for (const spice::Netlist *netlist : netlists)
        support::panicIf(netlist == nullptr,
                         "Session sweep: null netlist");

    // Phase 1: assemble + fingerprint every netlist. Assembly rejects
    // land as structured BadInput failures, exactly like
    // TransientBatch.
    std::vector<std::unique_ptr<spice::SparseMnaSystem>> systems(count);
    std::vector<MnaFingerprint> fps(count);
    for (std::size_t i = 0; i < count; ++i) {
        try {
            systems[i] =
                std::make_unique<spice::SparseMnaSystem>(*netlists[i]);
            fps[i] = fingerprintMna(*systems[i]);
        } catch (const support::ArkError &error) {
            results[i].failure = spice::detail::errorFailure(error, t0);
        }
    }

    // Phase 2: group by structural fingerprint — O(n) against the
    // quadratic sharesStructure scan — re-verifying each bucket match
    // with sharesStructure so a hash collision can only split a
    // group, never merge distinct structures.
    std::vector<std::size_t> leaderOf(count, count);
    std::vector<std::size_t> leaders;
    std::unordered_map<Fingerprint, std::vector<std::size_t>,
                       FingerprintHash>
        buckets;
    for (std::size_t i = 0; i < count; ++i) {
        if (!systems[i])
            continue;
        std::vector<std::size_t> &bucket = buckets[fps[i].pattern];
        for (std::size_t leader : bucket) {
            if (systems[leader]->sharesStructure(*systems[i])) {
                leaderOf[i] = leader;
                break;
            }
        }
        if (leaderOf[i] == count) {
            leaders.push_back(i);
            bucket.push_back(i);
            leaderOf[i] = i;
        }
    }
    if (stats)
        stats->structureGroups = leaders.size();

    // Phase 3 + 4: resolve each group's factored operators through
    // the artifact cache and run the transients on the shared pool.
    // Leader resolution is lazy under a per-leader once-flag so
    // heterogeneous sweeps factor concurrently; a leader whose values
    // are singular leaves no shared stepper and members fall back to
    // standalone (self-pivot-sourced, still cached) factorizations.
    const double finalH = spice::finalStepSize(t0, t1, dt);
    ArtifactCache &artifacts = cache();
    std::atomic<std::size_t> factorHits{0};
    std::atomic<std::size_t> factorMisses{0};
    std::vector<StepperPtr> leaderStepper(count);
    std::vector<std::unique_ptr<std::once_flag>> leaderOnce(count);
    for (std::size_t leader : leaders)
        leaderOnce[leader] = std::make_unique<std::once_flag>();

    auto cachedStepper = [&](const Fingerprint &key,
                             const std::function<StepperPtr()> &build) {
        bool hit = false;
        StepperPtr stepper = artifacts.stepper(key, build, &hit);
        if (hit)
            ++factorHits;
        else
            ++factorMisses;
        return stepper;
    };

    std::vector<std::exception_ptr> errors(count);
    sim::BatchRunner::shared().parallelFor(
        count, options.numThreads, [&](std::size_t i) {
            if (results[i].failure.has_value())
                return; // assembly already failed
            const spice::SparseMnaSystem &system = *systems[i];
            const std::size_t leader = leaderOf[i];
            try {
                std::call_once(*leaderOnce[leader], [&] {
                    try {
                        leaderStepper[leader] = cachedStepper(
                            stepperKey(fps[leader], fps[leader].values,
                                       fps[leader].values, dt, finalH),
                            [&]() -> StepperPtr {
                                auto built = std::make_shared<
                                    spice::TransientStepper>(
                                    *systems[leader], dt);
                                built->prepareFinalStep(*systems[leader],
                                                        finalH);
                                return built;
                            });
                    } catch (...) {
                        // Leader factorization failed; members factor
                        // standalone and report whatever recurs.
                    }
                });
                StepperPtr stepper;
                if (leaderStepper[leader] != nullptr &&
                    system.sharesMatrixValues(*systems[leader])) {
                    // Bit-identical matrices: share the leader's
                    // factors outright.
                    stepper = leaderStepper[leader];
                } else if (leaderStepper[leader] != nullptr) {
                    // Same structure, different values: the leader's
                    // pivot order numerically rebound to this
                    // instance — the exact factors TransientBatch
                    // computes, addressed by (pattern, leader values,
                    // instance values).
                    stepper = cachedStepper(
                        stepperKey(fps[i], fps[leader].values,
                                   fps[i].values, dt, finalH),
                        [&]() -> StepperPtr {
                            auto rebound = std::make_shared<
                                spice::TransientStepper>(
                                *leaderStepper[leader]);
                            rebound->rebind(system);
                            return rebound;
                        });
                } else {
                    stepper = cachedStepper(
                        stepperKey(fps[i], fps[i].values, fps[i].values,
                                   dt, finalH),
                        [&]() -> StepperPtr {
                            auto built = std::make_shared<
                                spice::TransientStepper>(system, dt);
                            built->prepareFinalStep(system, finalH);
                            return built;
                        });
                }
                results[i] = stepper->run(system, t0, t1);
            } catch (const support::ArkError &error) {
                results[i].failure =
                    spice::detail::errorFailure(error, t0);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    for (std::exception_ptr &error : errors)
        if (error)
            std::rethrow_exception(error);

    if (stats) {
        stats->factorHits = factorHits.load();
        stats->factorMisses = factorMisses.load();
    }
    return results;
}

} // namespace ark::engine
