#include "engine/cache.h"

#include <list>
#include <mutex>
#include <unordered_map>

#include "compiler/compiler.h"
#include "expr/cjit.h"
#include "support/faultinject.h"
#include "support/logging.h"
#include "support/telemetry.h"
#include "validator/validator.h"

namespace ark::engine {

using support::cat;

std::string
CacheStats::str() const
{
    return cat("systems ", systemHits, " hit / ", systemMisses,
               " miss / ", systemEvictions, " evicted (", systemsCached,
               " cached); steppers ", stepperHits, " hit / ",
               stepperMisses, " miss / ", stepperEvictions, " evicted (",
               steppersCached, " cached); kernels ", kernelHits,
               " hit / ", kernelMisses, " miss / ", kernelEvictions,
               " evicted (", kernelsCached, " cached)");
}

namespace {

/**
 * One bounded LRU map from Fingerprint to a type-erased shared
 * artifact. Callers hold the owning mutex; Shard itself is not
 * synchronized.
 */
class Shard
{
  public:
    /**
     * The three telemetry counters mirror the member tallies: every
     * ++hits/++misses/++evictions below also bumps its registry twin,
     * so CacheStats, the metrics registry, and (through the hit
     * out-param) SweepStats all count by one definition — in
     * particular, a FaultInjector-forced miss or evict is a miss or
     * evict in every ledger.
     */
    Shard(std::size_t capacity, telemetry::Counter &hitCounter,
          telemetry::Counter &missCounter,
          telemetry::Counter &evictionCounter)
        : hitCounter_(hitCounter), missCounter_(missCounter),
          evictionCounter_(evictionCounter), capacity_(capacity)
    {
    }

    std::shared_ptr<const void> get(const Fingerprint &key)
    {
        // Deterministic fault injection: a forced miss makes the
        // caller rebuild even when the artifact is resident — tests
        // use it to prove rebuilds are bit-identical to cached serves.
        if (support::FaultInjector::shouldFire(
                support::FaultSite::CacheMiss)) {
            ++misses;
            missCounter_.add();
            return nullptr;
        }
        auto it = map_.find(key);
        if (it == map_.end()) {
            ++misses;
            missCounter_.add();
            return nullptr;
        }
        ++hits;
        hitCounter_.add();
        lru_.splice(lru_.begin(), lru_, it->second.lruPos);
        return it->second.value;
    }

    /** Inserts and returns the canonical stored pointer (the
     *  incumbent when another thread won the build race). */
    std::shared_ptr<const void> put(const Fingerprint &key,
                                    std::shared_ptr<const void> value)
    {
        if (capacity_ == 0)
            return value;
        auto it = map_.find(key);
        if (it != map_.end()) {
            // Lost race: another thread built the same artifact
            // first. Keep the incumbent (equal bits by contract).
            lru_.splice(lru_.begin(), lru_, it->second.lruPos);
            return it->second.value;
        }
        lru_.push_front(key);
        it = map_.emplace(key, Entry{std::move(value), lru_.begin()})
                 .first;
        std::shared_ptr<const void> stored = it->second.value;
        while (map_.size() > capacity_) {
            map_.erase(lru_.back());
            lru_.pop_back();
            ++evictions;
            evictionCounter_.add();
        }
        // Deterministic fault injection: evict the entry we just
        // inserted, as capacity pressure would — the caller still
        // gets the built artifact; the next lookup must rebuild.
        if (support::FaultInjector::shouldFire(
                support::FaultSite::CacheEvict)) {
            auto inserted = map_.find(key);
            if (inserted != map_.end()) {
                lru_.erase(inserted->second.lruPos);
                map_.erase(inserted);
                ++evictions;
                evictionCounter_.add();
            }
        }
        return stored;
    }

    void clear()
    {
        map_.clear();
        lru_.clear();
    }

    std::size_t size() const { return map_.size(); }

    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

  private:
    struct Entry
    {
        std::shared_ptr<const void> value;
        std::list<Fingerprint>::iterator lruPos;
    };

    telemetry::Counter &hitCounter_;
    telemetry::Counter &missCounter_;
    telemetry::Counter &evictionCounter_;
    std::size_t capacity_;
    std::unordered_map<Fingerprint, Entry, FingerprintHash> map_;
    std::list<Fingerprint> lru_;
};

} // namespace

struct ArtifactCache::Impl
{
    explicit Impl(const CacheConfig &config)
        : systems(config.maxSystems,
                  telemetry::Registry::shared().counter(
                      "ark.cache.system_hits"),
                  telemetry::Registry::shared().counter(
                      "ark.cache.system_misses"),
                  telemetry::Registry::shared().counter(
                      "ark.cache.system_evictions")),
          steppers(config.maxSteppers,
                   telemetry::Registry::shared().counter(
                       "ark.cache.stepper_hits"),
                   telemetry::Registry::shared().counter(
                       "ark.cache.stepper_misses"),
                   telemetry::Registry::shared().counter(
                       "ark.cache.stepper_evictions")),
          kernels(config.maxKernels,
                  telemetry::Registry::shared().counter(
                      "ark.cache.kernel_hits"),
                  telemetry::Registry::shared().counter(
                      "ark.cache.kernel_misses"),
                  telemetry::Registry::shared().counter(
                      "ark.cache.kernel_evictions"))
    {
    }

    mutable std::mutex mutex;
    Shard systems;
    Shard steppers;
    Shard kernels;
};

ArtifactCache::ArtifactCache(CacheConfig config)
    : config_(config), impl_(std::make_unique<Impl>(config))
{
}

ArtifactCache::~ArtifactCache() = default;

SystemPtr
ArtifactCache::system(const dg::Graph &graph, const lang::Language &lang)
{
    return system(fingerprintGraph(graph, lang), graph, lang);
}

SystemPtr
ArtifactCache::system(const GraphFingerprint &fp, const dg::Graph &graph,
                      const lang::Language &lang)
{
    // Span arg: 1 = served from cache, 0 = built.
    telemetry::ScopedSpan span("ark.cache.system", 0);
    {
        std::lock_guard lock(impl_->mutex);
        if (auto cached = impl_->systems.get(fp.combined)) {
            span.setArg(1);
            return std::static_pointer_cast<const compiler::OdeSystem>(
                cached);
        }
    }
    // Build outside the lock: validation (ILP) and lowering are the
    // expensive steps the cache exists to amortize, and holding the
    // mutex through them would serialize concurrent misses on
    // *different* graphs. A race on the same graph builds twice;
    // both results are bit-identical and the first insert wins.
    validator::validateOrThrow(graph, lang);
    auto built = std::make_shared<const compiler::OdeSystem>(
        compiler::compile(graph, lang));
    std::lock_guard lock(impl_->mutex);
    return std::static_pointer_cast<const compiler::OdeSystem>(
        impl_->systems.put(fp.combined, built));
}

StepperPtr
ArtifactCache::stepper(const Fingerprint &key,
                       const std::function<StepperPtr()> &build,
                       bool *hit)
{
    // Span arg: 1 = served from cache, 0 = built.
    telemetry::ScopedSpan span("ark.cache.stepper", 0);
    {
        std::lock_guard lock(impl_->mutex);
        if (auto cached = impl_->steppers.get(key)) {
            if (hit)
                *hit = true;
            span.setArg(1);
            return std::static_pointer_cast<
                const spice::TransientStepper>(cached);
        }
    }
    if (hit)
        *hit = false;
    StepperPtr built = build();
    support::panicIf(built == nullptr,
                     "ArtifactCache: stepper build returned null");
    std::lock_guard lock(impl_->mutex);
    return std::static_pointer_cast<const spice::TransientStepper>(
        impl_->steppers.put(key, built));
}

KernelPtr
ArtifactCache::kernel(const Fingerprint &key,
                      const std::function<KernelPtr()> &build, bool *hit)
{
    // Span arg: 1 = served from cache, 0 = built (or build failed).
    telemetry::ScopedSpan span("ark.cache.kernel", 0);
    {
        std::lock_guard lock(impl_->mutex);
        if (auto cached = impl_->kernels.get(key)) {
            if (hit)
                *hit = true;
            span.setArg(1);
            return std::static_pointer_cast<const expr::JitKernel>(
                cached);
        }
    }
    if (hit)
        *hit = false;
    // Build (emit + compile + dlopen) outside the lock, like the
    // other kinds. A null build is a graceful compile failure — the
    // caller falls back to the interpreted tier — and is not cached:
    // negative results are cheap to rediscover and may heal (e.g. a
    // disarmed fault site or a freed-up disk).
    KernelPtr built = build();
    if (built == nullptr)
        return nullptr;
    std::lock_guard lock(impl_->mutex);
    return std::static_pointer_cast<const expr::JitKernel>(
        impl_->kernels.put(key, built));
}

CacheStats
ArtifactCache::stats() const
{
    std::lock_guard lock(impl_->mutex);
    CacheStats stats;
    stats.systemHits = impl_->systems.hits;
    stats.systemMisses = impl_->systems.misses;
    stats.systemEvictions = impl_->systems.evictions;
    stats.stepperHits = impl_->steppers.hits;
    stats.stepperMisses = impl_->steppers.misses;
    stats.stepperEvictions = impl_->steppers.evictions;
    stats.kernelHits = impl_->kernels.hits;
    stats.kernelMisses = impl_->kernels.misses;
    stats.kernelEvictions = impl_->kernels.evictions;
    stats.systemsCached = impl_->systems.size();
    stats.steppersCached = impl_->steppers.size();
    stats.kernelsCached = impl_->kernels.size();
    return stats;
}

void
ArtifactCache::clear()
{
    std::lock_guard lock(impl_->mutex);
    impl_->systems.clear();
    impl_->steppers.clear();
    impl_->kernels.clear();
}

ArtifactCache &
ArtifactCache::shared()
{
    // Leaked intentionally: ensembles may still hold artifacts during
    // static destruction, and the OS reclaims the memory anyway.
    static ArtifactCache *instance = new ArtifactCache();
    return *instance;
}

} // namespace ark::engine
