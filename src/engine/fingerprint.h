#ifndef ARK_ENGINE_FINGERPRINT_H
#define ARK_ENGINE_FINGERPRINT_H

/**
 * @file
 * Content-addressed fingerprints for compiled artifacts.
 *
 * Ark's repeated-evaluation workloads (PUF challenge batteries,
 * max-cut restarts, cross-validation sweeps) evaluate a small set of
 * *structures* under thousands of parameter draws. The engine layer
 * shares the expensive per-structure work — ILP validation, compiler
 * lowering, sparse companion factorization — by addressing every
 * artifact with a canonical content hash of its inputs:
 *
 *  - a dynamical graph (plus the language it is written in) hashes to
 *    a GraphFingerprint. The hash is split into a *structure* lane
 *    (language, node/edge names, types, wiring, switch states,
 *    attribute names and kinds, lambda bodies) and a *values* lane
 *    (every numeric/bool attribute and initial value, bit-exact).
 *    Graphs with equal structure lanes compile to fused programs that
 *    differ at most in Const immediates — the lane-batching
 *    compatibility class; graphs with equal *combined* fingerprints
 *    compile to bit-identical OdeSystems (equal equations, tapes, and
 *    initial states), which is the ArtifactCache key contract,
 *    property-tested in engine_test.
 *
 *  - an assembled SparseMnaSystem hashes to an MnaFingerprint: a
 *    *pattern* lane covering what SparseMnaSystem::sharesStructure
 *    compares (size, M/K sparsity patterns, dynamic-row mask, source
 *    placement) and a *values* lane covering the bit-exact M/K
 *    entries. (pattern, values) determines the trapezoidal companion
 *    factorization for a given step size, so TransientStepper
 *    factorizations are cached under stepperKey(pattern, pivot
 *    source, values, dt, finalH) — the pivot-source lane records
 *    which instance's values chose the pivot order, keeping cached
 *    factors bit-identical to the uncached leader/rebind path.
 *
 * Fingerprints are 128-bit mixes of a byte-level canonical
 * serialization; equality is treated as content equality (collision
 * probability ~2^-64 per pair, negligible against the workload sizes
 * here, and the structure-grouping callers re-verify with
 * sharesStructure before sharing factors).
 */

#include <cstdint>
#include <string>

#include "dg/graph.h"
#include "lang/language.h"
#include "spice/mna.h"

namespace ark::expr {
class LaneTape;
}

namespace ark::engine {

/** A 128-bit content hash. Value type; equality is content equality. */
struct Fingerprint
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const Fingerprint &) const = default;

    /** 32-hex-digit rendering (diagnostics, cache dumps). */
    std::string str() const;
};

/** Hash functor for unordered containers keyed by Fingerprint. */
struct FingerprintHash
{
    std::size_t operator()(const Fingerprint &fp) const
    {
        return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ull));
    }
};

/**
 * Incremental 128-bit hasher over canonical serializations. Not
 * cryptographic — built to make accidental collisions between
 * distinct artifacts vanishingly unlikely, nothing more.
 */
class Hasher
{
  public:
    void absorb(std::uint64_t x);
    void absorb(double x);
    void absorb(bool x) { absorb(static_cast<std::uint64_t>(x ? 1 : 2)); }
    void absorb(const std::string &s);
    /** Absorbs an expression tree: O(1) via the node's interned
     *  structural digest (bit-exact literals; see expr/expr.h). */
    void absorb(const expr::Expr &e);
    /** Absorbs a runtime value (kind tag + bit-exact payload). */
    void absorb(const expr::Value &v);

    Fingerprint finish() const;

  private:
    std::uint64_t a_ = 0x9e3779b97f4a7c15ull;
    std::uint64_t b_ = 0x6a09e667f3bcc909ull;
};

/** Canonical hash of a dynamical graph bound to a language. */
struct GraphFingerprint
{
    /** Language + topology + switch states + attribute names/kinds +
     *  lambda bodies: the lane-batching compatibility class. */
    Fingerprint structure;
    /** Every numeric/bool attribute and initial value, bit-exact. */
    Fingerprint values;
    /** Mix of the two lanes: the compiled-artifact cache key. */
    Fingerprint combined;
};

/**
 * Fingerprints `graph` as written in `lang`. Deterministic in the
 * graph contents alone (node/edge insertion order is semantically
 * significant: it fixes the state-vector layout). Effective
 * (post-mismatch-sampling) attribute values are hashed — they are
 * what the compiler lowers.
 */
GraphFingerprint fingerprintGraph(const dg::Graph &graph,
                                  const lang::Language &lang);

/** Canonical hash of an assembled sparse MNA system. */
struct MnaFingerprint
{
    /** What sharesStructure compares: size, M/K patterns, dynamic-row
     *  mask, source placement (rows/signs). Equal patterns share one
     *  symbolic factorization. */
    Fingerprint pattern;
    /** Bit-exact M/K entry values: equal (pattern, values) pairs have
     *  bit-identical companion matrices at any step size. */
    Fingerprint values;
};

MnaFingerprint fingerprintMna(const spice::SparseMnaSystem &system);

/**
 * Cache key for a TransientStepper factorization: the matrix pattern,
 * the values of the instance whose factorization chose the pivot
 * order (the group leader — a stepper built standalone is its own
 * pivot source), the values the factors are bound to, and the exact
 * step sizes (main dt and prepared fractional final step, bit-exact).
 */
Fingerprint stepperKey(const MnaFingerprint &pattern,
                       const Fingerprint &pivotSourceValues,
                       const Fingerprint &boundValues, double dt,
                       double finalH);

/**
 * Cache key for a tier-5 JIT kernel: the lane tape's structure —
 * opcode stream (operands, destinations, builtins), lane width, and
 * register/output counts — plus the emitter version, so a codegen
 * change invalidates every cached kernel (in memory and on disk).
 * Const immediates are deliberately excluded: they are call-time data
 * (the per-lane constant table), which is what lets one kernel serve
 * every parameter draw of a structure class. FMA needs no separate
 * flag — contracted tapes carry FusedMulAdd opcodes, so their streams
 * already differ.
 */
Fingerprint kernelKey(const expr::LaneTape &tape);

} // namespace ark::engine

#endif // ARK_ENGINE_FINGERPRINT_H
