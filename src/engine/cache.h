#ifndef ARK_ENGINE_CACHE_H
#define ARK_ENGINE_CACHE_H

/**
 * @file
 * Process-wide content-addressed cache of compiled artifacts.
 *
 * ArtifactCache maps fingerprints (engine/fingerprint.h) to shared,
 * immutable, ready-to-run artifacts:
 *
 *  - dg::Graph + language -> shared_ptr<const compiler::OdeSystem>.
 *    A hit skips ILP validation and compiler lowering entirely; the
 *    cached system already carries both precompiled tape variants
 *    (plain and FMA-contracted), so every SimOptions::tapeFma setting
 *    is served by one artifact. Because compilation is deterministic,
 *    a cached system is bit-identical to a freshly compiled one —
 *    ensembles mixing cached and cold systems produce bit-identical
 *    trajectories (engine_test regression-tests this at several
 *    thread counts).
 *
 *  - kernelKey(laneTape) -> shared_ptr<const expr::JitKernel>: a
 *    tier-5 native kernel (expr/cjit.h). Keyed by tape structure
 *    only — per-lane constants are call-time data — so one compiled
 *    kernel serves every parameter draw of a structure class, and a
 *    PUF battery's worth of chips share a single compilation.
 *
 *  - stepperKey(pattern, pivot source, values, dt, finalH) ->
 *    shared_ptr<const spice::TransientStepper>: a factored trapezoidal
 *    companion operator. Keys carry the values of the instance whose
 *    factorization chose the pivot order, so a cached stepper holds
 *    exactly the bits the uncached leader-factor/member-rebind path
 *    would compute — repeated sweeps hit warm factors without any
 *    numerical drift. TransientStepper::run is const and thread-safe,
 *    so one cached stepper serves concurrent instances.
 *
 * The cache is bounded (per-kind LRU eviction) and thread-safe: all
 * bookkeeping happens under one mutex, while compilation/factorization
 * of a missing artifact runs outside it (two threads racing on the
 * same key may both build; the results are identical bits and the
 * first insert wins — the loser is handed the incumbent pointer, so
 * determinism is unaffected). Entries are shared_ptrs,
 * so eviction never invalidates artifacts still in use by a running
 * ensemble.
 *
 * shared() is the process-wide instance behind engine::Session;
 * workloads wanting isolation (benchmarks, tests) construct their own.
 */

#include <cstdint>
#include <functional>
#include <memory>

#include "compiler/odesystem.h"
#include "engine/fingerprint.h"
#include "spice/mna.h"

namespace ark::expr {
class JitKernel;
}

namespace ark::engine {

/** Capacity bounds (entries, not bytes). */
struct CacheConfig
{
    /**
     * Compiled OdeSystems kept. Sized for structure-reuse workloads
     * (a 16-challenge x 8-chip CRP battery is 144 artifacts), not for
     * sweeps of unique random structures, which simply churn the tail
     * of the LRU list at negligible cost.
     */
    std::size_t maxSystems = 256;

    /** Factored TransientSteppers kept (each is a few pivot/fill
     *  vectors — far smaller than a compiled system). */
    std::size_t maxSteppers = 1024;

    /** Loaded tier-5 JIT kernels kept (each pins one small dlopened
     *  object). Distinct (structure, width) pairs are few even in
     *  large batteries, so this rarely evicts. */
    std::size_t maxKernels = 256;
};

/** Monotonic hit/miss/eviction counters plus current occupancy. */
struct CacheStats
{
    std::uint64_t systemHits = 0;
    std::uint64_t systemMisses = 0;
    std::uint64_t systemEvictions = 0;
    std::uint64_t stepperHits = 0;
    std::uint64_t stepperMisses = 0;
    std::uint64_t stepperEvictions = 0;
    std::uint64_t kernelHits = 0;
    std::uint64_t kernelMisses = 0;
    std::uint64_t kernelEvictions = 0;
    std::size_t systemsCached = 0;
    std::size_t steppersCached = 0;
    std::size_t kernelsCached = 0;

    /** One-line summary ("systems 3 hit / 1 miss ..."). */
    std::string str() const;
};

/** Shared immutable compiled system (the engine ownership unit). */
using SystemPtr = std::shared_ptr<const compiler::OdeSystem>;

/** Shared immutable factored companion operator. */
using StepperPtr = std::shared_ptr<const spice::TransientStepper>;

/** Shared immutable loaded tier-5 kernel (expr/cjit.h). */
using KernelPtr = std::shared_ptr<const expr::JitKernel>;

class ArtifactCache
{
  public:
    explicit ArtifactCache(CacheConfig config = CacheConfig{});
    ~ArtifactCache();

    ArtifactCache(const ArtifactCache &) = delete;
    ArtifactCache &operator=(const ArtifactCache &) = delete;

    const CacheConfig &config() const { return config_; }

    /**
     * The compiled system for `graph` in `lang`. On miss, validates
     * (validator::validateOrThrow) and compiles, then caches under
     * the graph's combined content fingerprint; on hit, both steps
     * are skipped — sound because validation and compilation are
     * deterministic functions of the fingerprinted content.
     * @throws ark::support::SemaError / CompileError exactly as the
     *         uncached validate+compile path would (nothing is cached
     *         on throw).
     */
    SystemPtr system(const dg::Graph &graph, const lang::Language &lang);

    /**
     * Variant for callers that already computed the fingerprint (and
     * want the structure lane for other purposes, e.g. grouping).
     */
    SystemPtr system(const GraphFingerprint &fp, const dg::Graph &graph,
                     const lang::Language &lang);

    /**
     * The factored stepper for `key` (see engine::stepperKey). On
     * miss, invokes `build` outside the cache lock and caches its
     * result; on throw nothing is cached and the exception
     * propagates. `hit`, when non-null, reports whether the stepper
     * came from the cache — per-sweep hit-rate accounting.
     */
    StepperPtr stepper(const Fingerprint &key,
                       const std::function<StepperPtr()> &build,
                       bool *hit = nullptr);

    /**
     * The loaded tier-5 kernel for `key` (see engine::kernelKey). On
     * miss, invokes `build` outside the cache lock. Unlike the other
     * kinds, `build` may return null — kernel compilation fails
     * gracefully (no toolchain, forced fault) — in which case nothing
     * is cached and null is returned; the caller falls back to the
     * interpreted tier. `hit` reports whether the kernel came from
     * the cache.
     */
    KernelPtr kernel(const Fingerprint &key,
                     const std::function<KernelPtr()> &build,
                     bool *hit = nullptr);

    /** Counters snapshot (monotonic apart from occupancy). */
    CacheStats stats() const;

    /** Drops every entry; counters keep accumulating. */
    void clear();

    /** Process-wide cache backing engine::Session by default. */
    static ArtifactCache &shared();

  private:
    struct Impl;
    CacheConfig config_;
    std::unique_ptr<Impl> impl_;
};

} // namespace ark::engine

#endif // ARK_ENGINE_CACHE_H
