#include "engine/jit.h"

#include "engine/cache.h"
#include "engine/fingerprint.h"
#include "support/telemetry.h"

namespace ark::engine {

expr::JitKernelPtr
jitKernel(const expr::LaneTape &tape, ArtifactCache *cache)
{
    if (!expr::jitToolchainAvailable())
        return nullptr;
    static telemetry::Counter &hits =
        telemetry::Registry::shared().counter("ark.compile.jit_hits");
    ArtifactCache &served = cache != nullptr ? *cache
                                             : ArtifactCache::shared();
    const Fingerprint key = kernelKey(tape);
    bool hit = false;
    expr::JitKernelPtr kernel = served.kernel(
        key, [&] { return expr::compileKernel(tape, key.str()); },
        &hit);
    if (hit)
        hits.add();
    return kernel;
}

} // namespace ark::engine
