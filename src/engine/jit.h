#ifndef ARK_ENGINE_JIT_H
#define ARK_ENGINE_JIT_H

/**
 * @file
 * Engine front door for tier-5 kernels: resolves a LaneTape to its
 * compiled native kernel through the ArtifactCache.
 *
 * This is the one call sites use — it folds together the toolchain
 * probe (expr::jitToolchainAvailable), the structure cache key
 * (engine::kernelKey), the in-memory kernel shard, and the on-disk
 * object cache (expr::compileKernel). Null means "interpret": every
 * failure mode — jit disabled, no toolchain, compile failure, forced
 * FaultSite::JitCompile — degrades to the tier-4 interpreter with
 * bit-identical results.
 */

#include "expr/cjit.h"

namespace ark::engine {

class ArtifactCache;

/**
 * The compiled kernel for `tape`'s structure, compiling on first use.
 * Served through `cache` when given, the process-wide shared cache
 * otherwise (kernels are pure functions of tape structure, so sharing
 * across sessions is always sound). Returns null when the kernel
 * cannot be produced; never throws.
 */
expr::JitKernelPtr jitKernel(const expr::LaneTape &tape,
                             ArtifactCache *cache = nullptr);

} // namespace ark::engine

#endif // ARK_ENGINE_JIT_H
