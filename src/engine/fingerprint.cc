#include "engine/fingerprint.h"

#include <algorithm>
#include <array>
#include <bit>

#include "expr/expr.h"
#include "expr/lanetape.h"
#include "expr/tape.h"
#include "support/logging.h"

namespace ark::engine {

namespace {

/** splitmix64 finalizer: the per-word diffusion step. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::string
Fingerprint::str() const
{
    static const char *digits = "0123456789abcdef";
    std::string out;
    out.reserve(32);
    for (int half = 0; half < 2; ++half) {
        std::uint64_t word = half == 0 ? hi : lo;
        for (int nibble = 15; nibble >= 0; --nibble)
            out += digits[(word >> (4 * nibble)) & 0xf];
    }
    return out;
}

void
Hasher::absorb(std::uint64_t x)
{
    // Two independently mixed lanes: word position enters through the
    // running state, so permuted serializations hash differently.
    a_ = mix64(a_ ^ x);
    b_ = mix64(b_ + std::rotl(x, 29) + 0xff51afd7ed558ccdull);
}

void
Hasher::absorb(double x)
{
    // Bit-exact: distinguishes -0.0 from 0.0 and every NaN payload,
    // matching the "bit-identical results" cache contract.
    absorb(std::bit_cast<std::uint64_t>(x));
}

void
Hasher::absorb(const std::string &s)
{
    absorb(static_cast<std::uint64_t>(s.size()));
    std::uint64_t word = 0;
    int inWord = 0;
    for (unsigned char c : s) {
        word = (word << 8) | c;
        if (++inWord == 8) {
            absorb(word);
            word = 0;
            inWord = 0;
        }
    }
    if (inWord > 0)
        absorb(word);
}

void
Hasher::absorb(const expr::Value &v)
{
    absorb(static_cast<std::uint64_t>(v.kind()));
    switch (v.kind()) {
    case expr::ValueKind::Real:
        absorb(v.asReal());
        break;
    case expr::ValueKind::Int:
        absorb(static_cast<std::uint64_t>(v.asInt()));
        break;
    case expr::ValueKind::Bool:
        absorb(v.asBool());
        break;
    case expr::ValueKind::Function: {
        const expr::Lambda &fn = v.asFunction();
        absorb(static_cast<std::uint64_t>(fn.params.size()));
        for (const std::string &param : fn.params)
            absorb(param);
        support::panicIf(!fn.body, "fingerprint: lambda without body");
        absorb(*fn.body);
        break;
    }
    }
}

void
Hasher::absorb(const expr::Expr &e)
{
    // Expressions are hash-consed (expr/expr.h): every node carries
    // the 128-bit structural digest of its subtree (bit-exact
    // literals), computed once at intern time. Absorbing the two
    // digest words is equivalent to the structural walk this used to
    // do — structurally equal subtrees have equal digests — at O(1)
    // instead of O(subtree).
    absorb(e.digestHi());
    absorb(e.digestLo());
}

Fingerprint
Hasher::finish() const
{
    // One extra avalanche so absorb order near the tail still
    // diffuses into both words.
    return Fingerprint{mix64(a_ ^ std::rotl(b_, 32)), mix64(b_ ^ a_)};
}

namespace {

/** Sorted attribute names of one element (canonical iteration). */
std::vector<const std::string *>
sortedAttrNames(const std::unordered_map<std::string, dg::AttrValue> &attrs)
{
    std::vector<const std::string *> names;
    names.reserve(attrs.size());
    for (const auto &[name, value] : attrs)
        names.push_back(&name);
    std::sort(names.begin(), names.end(),
              [](const std::string *x, const std::string *y) {
                  return *x < *y;
              });
    return names;
}

/**
 * Splits one attribute map between the lanes: names, kinds, and
 * lambda bodies are structure; numeric/bool payloads are values.
 */
void
absorbAttrs(Hasher &structure, Hasher &values,
            const std::unordered_map<std::string, dg::AttrValue> &attrs)
{
    structure.absorb(static_cast<std::uint64_t>(attrs.size()));
    for (const std::string *name : sortedAttrNames(attrs)) {
        const expr::Value &effective = attrs.at(*name).effective;
        structure.absorb(*name);
        structure.absorb(static_cast<std::uint64_t>(effective.kind()));
        if (effective.isFunction()) {
            // Lambda bodies shape the compiled program beyond Const
            // immediates, so they live in the structure lane.
            structure.absorb(effective);
        } else {
            values.absorb(effective);
        }
    }
}

void
absorbDataType(Hasher &h, const dg::DataType &type)
{
    h.absorb(static_cast<std::uint64_t>(type.kind()));
    h.absorb(type.isConst());
    switch (type.kind()) {
    case dg::TypeKind::Real:
        h.absorb(type.realLo());
        h.absorb(type.realHi());
        break;
    case dg::TypeKind::Int:
        h.absorb(static_cast<std::uint64_t>(type.intLo()));
        h.absorb(static_cast<std::uint64_t>(type.intHi()));
        break;
    case dg::TypeKind::Function:
        h.absorb(static_cast<std::uint64_t>(type.params().size()));
        for (const std::string &param : type.params())
            h.absorb(param);
        break;
    }
    h.absorb(type.hasMismatch());
    if (type.hasMismatch()) {
        h.absorb(type.mismatch()->s0);
        h.absorb(type.mismatch()->s1);
    }
}

void
absorbAttrDef(Hasher &h, const dg::AttrDef &attr)
{
    h.absorb(attr.name);
    absorbDataType(h, attr.type);
    h.absorb(attr.fixedValue.has_value());
    if (attr.fixedValue.has_value())
        h.absorb(*attr.fixedValue);
}

void
absorbPatterns(Hasher &h, const std::vector<lang::Pattern> &patterns)
{
    h.absorb(static_cast<std::uint64_t>(patterns.size()));
    for (const lang::Pattern &pattern : patterns) {
        h.absorb(static_cast<std::uint64_t>(pattern.clauses.size()));
        for (const lang::MatchClause &clause : pattern.clauses) {
            h.absorb(static_cast<std::uint64_t>(clause.dir));
            h.absorb(static_cast<std::uint64_t>(clause.lo));
            h.absorb(static_cast<std::uint64_t>(clause.hi));
            h.absorb(clause.edgeType);
            h.absorb(static_cast<std::uint64_t>(clause.nodeTypes.size()));
            for (const std::string &nodeType : clause.nodeTypes)
                h.absorb(nodeType);
            h.absorb(clause.targetName);
        }
    }
}

/**
 * The language content compilation and validation depend on: the type
 * table (state layout, reductions, defaults, mismatch specs), every
 * production rule (the dynamics), every constraint (a cache hit skips
 * re-validation, so validity must be part of the address), and the
 * extern-func bindings. Hashing only the language *name* would let
 * two same-named languages with different rules alias one cache
 * entry.
 */
void
absorbLanguage(Hasher &h, const lang::Language &lang)
{
    h.absorb(lang.name());

    const dg::TypeTable &types = lang.types();
    h.absorb(static_cast<std::uint64_t>(types.nodeTypes().size()));
    for (const dg::NodeTypeDef &type : types.nodeTypes()) {
        h.absorb(type.name);
        h.absorb(static_cast<std::uint64_t>(type.order));
        h.absorb(static_cast<std::uint64_t>(type.reduction));
        h.absorb(type.parent);
        h.absorb(static_cast<std::uint64_t>(type.attrs.size()));
        for (const dg::AttrDef &attr : type.attrs)
            absorbAttrDef(h, attr);
        h.absorb(static_cast<std::uint64_t>(type.inits.size()));
        for (const dg::InitDef &init : type.inits) {
            h.absorb(static_cast<std::uint64_t>(init.derivative));
            absorbDataType(h, init.type);
            h.absorb(init.fixedValue.has_value());
            if (init.fixedValue.has_value())
                h.absorb(*init.fixedValue);
        }
    }
    h.absorb(static_cast<std::uint64_t>(types.edgeTypes().size()));
    for (const dg::EdgeTypeDef &type : types.edgeTypes()) {
        h.absorb(type.name);
        h.absorb(type.fixed);
        h.absorb(type.parent);
        h.absorb(static_cast<std::uint64_t>(type.attrs.size()));
        for (const dg::AttrDef &attr : type.attrs)
            absorbAttrDef(h, attr);
    }

    h.absorb(static_cast<std::uint64_t>(lang.prodRules().size()));
    for (const lang::ProdRule &rule : lang.prodRules()) {
        h.absorb(rule.edgeType);
        h.absorb(rule.srcType);
        h.absorb(rule.dstType);
        h.absorb(rule.self);
        h.absorb(static_cast<std::uint64_t>(rule.target));
        h.absorb(rule.edgeVar);
        h.absorb(rule.srcVar);
        h.absorb(rule.dstVar);
        support::panicIf(!rule.expr, "fingerprint: rule without expr");
        h.absorb(*rule.expr);
        h.absorb(rule.off);
        h.absorb(rule.definedIn);
    }

    h.absorb(static_cast<std::uint64_t>(lang.cstrs().size()));
    for (const lang::Cstr &cstr : lang.cstrs()) {
        h.absorb(cstr.nodeType);
        absorbPatterns(h, cstr.accepts);
        absorbPatterns(h, cstr.rejects);
    }

    h.absorb(static_cast<std::uint64_t>(lang.externFuncs().size()));
    for (const std::string &fn : lang.externFuncs())
        h.absorb(fn);
}

} // namespace

GraphFingerprint
fingerprintGraph(const dg::Graph &graph, const lang::Language &lang)
{
    Hasher structure;
    Hasher values;
    // The language digest is memoized on the (immutable,
    // registry-owned) Language itself, so repeated-evaluation
    // workloads hash its rules and types once per process, not once
    // per compiled graph.
    std::array<std::uint64_t, 2> langDigest =
        lang.memoizedDigest([&lang] {
            Hasher h;
            absorbLanguage(h, lang);
            Fingerprint fp = h.finish();
            return std::array<std::uint64_t, 2>{fp.hi, fp.lo};
        });
    structure.absorb(langDigest[0]);
    structure.absorb(langDigest[1]);
    structure.absorb(graph.langName());

    structure.absorb(static_cast<std::uint64_t>(graph.numNodes()));
    for (std::size_t i = 0; i < graph.numNodes(); ++i) {
        const dg::Node &node =
            graph.node(dg::NodeId{static_cast<std::int32_t>(i)});
        structure.absorb(node.name);
        structure.absorb(node.type);
        absorbAttrs(structure, values, node.attrs);
        structure.absorb(static_cast<std::uint64_t>(node.inits.size()));
        for (const std::optional<expr::Value> &init : node.inits) {
            structure.absorb(init.has_value());
            if (init.has_value())
                values.absorb(*init);
        }
    }

    structure.absorb(static_cast<std::uint64_t>(graph.numEdges()));
    for (std::size_t i = 0; i < graph.numEdges(); ++i) {
        const dg::Edge &edge =
            graph.edge(dg::EdgeId{static_cast<std::int32_t>(i)});
        structure.absorb(edge.name);
        structure.absorb(edge.type);
        structure.absorb(static_cast<std::uint64_t>(edge.src.index));
        structure.absorb(static_cast<std::uint64_t>(edge.dst.index));
        structure.absorb(edge.enabled);
        structure.absorb(edge.switchable);
        absorbAttrs(structure, values, edge.attrs);
    }

    GraphFingerprint fp;
    fp.structure = structure.finish();
    fp.values = values.finish();
    Hasher combined;
    combined.absorb(fp.structure.hi);
    combined.absorb(fp.structure.lo);
    combined.absorb(fp.values.hi);
    combined.absorb(fp.values.lo);
    fp.combined = combined.finish();
    return fp;
}

namespace {

void
absorbPattern(Hasher &h, const support::SparseMatrix &m)
{
    h.absorb(static_cast<std::uint64_t>(m.rows()));
    h.absorb(static_cast<std::uint64_t>(m.cols()));
    for (std::size_t p : m.rowPtr())
        h.absorb(static_cast<std::uint64_t>(p));
    for (std::size_t c : m.colIndex())
        h.absorb(static_cast<std::uint64_t>(c));
}

} // namespace

MnaFingerprint
fingerprintMna(const spice::SparseMnaSystem &system)
{
    MnaFingerprint fp;

    Hasher pattern;
    pattern.absorb(static_cast<std::uint64_t>(system.size()));
    pattern.absorb(static_cast<std::uint64_t>(system.numNodeUnknowns()));
    absorbPattern(pattern, system.massMatrix());
    absorbPattern(pattern, system.stiffnessMatrix());
    for (std::size_t r = 0; r < system.size(); ++r)
        pattern.absorb(system.rowIsDynamic(r));
    // Source placement mirrors sharesStructure: rows and signs matter
    // for grouping; dc levels and waveforms are RHS-only.
    const auto &sources = system.sources();
    pattern.absorb(static_cast<std::uint64_t>(sources.size()));
    for (const spice::detail::SourceEntry &entry : sources) {
        pattern.absorb(static_cast<std::uint64_t>(entry.row));
        pattern.absorb(entry.sign);
    }
    fp.pattern = pattern.finish();

    Hasher values;
    for (double v : system.massMatrix().values())
        values.absorb(v);
    for (double v : system.stiffnessMatrix().values())
        values.absorb(v);
    fp.values = values.finish();
    return fp;
}

Fingerprint
stepperKey(const MnaFingerprint &pattern,
           const Fingerprint &pivotSourceValues,
           const Fingerprint &boundValues, double dt, double finalH)
{
    Hasher h;
    h.absorb(pattern.pattern.hi);
    h.absorb(pattern.pattern.lo);
    h.absorb(pivotSourceValues.hi);
    h.absorb(pivotSourceValues.lo);
    h.absorb(boundValues.hi);
    h.absorb(boundValues.lo);
    h.absorb(dt);
    h.absorb(finalH);
    return h.finish();
}

Fingerprint
kernelKey(const expr::LaneTape &tape)
{
    // Bump on any change to the emitted C (expr::emitKernelC), the
    // kernel ABI, or the compile flags: the version is hashed into
    // every key, so old disk-cache entries become unreachable rather
    // than stale.
    constexpr std::uint64_t kEmitterVersion = 2;

    const auto index = [](std::int32_t i) {
        return static_cast<std::uint64_t>(static_cast<std::uint32_t>(i));
    };
    Hasher h;
    h.absorb(kEmitterVersion);
    h.absorb(static_cast<std::uint64_t>(tape.width()));
    h.absorb(static_cast<std::uint64_t>(tape.numOutputs()));
    h.absorb(index(tape.numRegs()));
    h.absorb(static_cast<std::uint64_t>(tape.size()));
    for (const expr::TapeOp &op : tape.ops()) {
        h.absorb(static_cast<std::uint64_t>(op.op));
        h.absorb(static_cast<std::uint64_t>(
            op.op == expr::OpCode::CallB ? op.builtin
                                         : expr::Builtin::Sin));
        h.absorb(index(op.dst));
        h.absorb(index(op.a));
        h.absorb(index(op.b));
        h.absorb(index(op.c));
        // op.imm is call-time data (the per-lane constant table) and
        // is deliberately not hashed.
    }
    return h.finish();
}

} // namespace ark::engine
