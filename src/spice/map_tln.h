#ifndef ARK_SPICE_MAP_TLN_H
#define ARK_SPICE_MAP_TLN_H

/**
 * @file
 * GmC-TLN dynamical graph -> SPICE netlist mapping (paper §4.5).
 *
 * Each V/I node becomes a circuit node with a grounded capacitor
 * (value c or l) and, per self edge, a grounded conductance (g or r);
 * coupling edges become VCCS pairs whose transconductances carry the
 * (possibly mismatched) ws/wt weights; InpI/InpV sources become
 * behavioral current sources with their Norton/Thevenin conductance.
 * The mapped netlist reproduces the DG's ODEs exactly, so transient
 * waveforms from the MNA engine must match the Ark compiler + ODE
 * solver within integration error — the cross-validation the paper
 * reports at <1% RMSE over 1000 random DGs.
 */

#include <unordered_map>

#include "dg/graph.h"
#include "lang/language.h"
#include "spice/netlist.h"

namespace ark::spice {

/** Mapping outcome: the netlist plus DG-node -> circuit-node ids. */
struct MappedTln
{
    Netlist netlist;
    std::unordered_map<std::string, int> circuitNodeOf;
};

/**
 * Maps a (validated) TLN or GmC-TLN dynamical graph to a netlist.
 * @throws ark::support::SemaError for graphs outside the TLN family.
 */
MappedTln mapTlnToSpice(const dg::Graph &graph,
                        const lang::Language &lang);

} // namespace ark::spice

#endif // ARK_SPICE_MAP_TLN_H
