#ifndef ARK_SPICE_BATCH_H
#define ARK_SPICE_BATCH_H

/**
 * @file
 * Batched SPICE transient execution — the circuit-side twin of the
 * ODE ensemble engine (sim/batch.h).
 *
 * A validation sweep runs hundreds of netlists that are mostly the
 * same circuit with different parameter values (mismatch-sampled
 * instances of one topology). TransientBatch exploits that:
 *
 *  1. every netlist is assembled into a SparseMnaSystem (CSR stamps);
 *  2. instances are grouped by structure (same unknowns, sparsity
 *     patterns, dynamic-row mask, and source placement — see
 *     SparseMnaSystem::sharesStructure);
 *  3. each group's leader factors the trapezoidal companion matrix
 *     (2M/h + K) once — symbolic analysis, pivot order, and fill
 *     pattern; members rebind it with a numeric-only refactorization
 *     (or share the factors outright when their matrix values are
 *     bit-identical), then back-substitute per step;
 *  4. instances execute in parallel on sim::BatchRunner::shared()'s
 *     persistent worker pool via parallelFor — no per-call thread
 *     spawn.
 *
 * Failures are per-instance and structured (TransientResult::failure
 * with TransientAbort::BadInput / SingularMatrix / NonfiniteState /
 * Cancelled / DeadlineExceeded), never exceptions: one singular or
 * diverging netlist does not take down the sweep. Batch-level
 * misconfiguration (dt <= 0, t1 < t0) still throws support::SimError,
 * since it invalidates every instance alike.
 *
 * Execution control mirrors the ODE ensemble engine: a stop token
 * cancels cooperatively (running instances abort at their next step
 * with a Cancelled failure, not-yet-started instances are skipped), a
 * wall-clock deadline retires work the same way with
 * DeadlineExceeded, and a progress callback ticks once per completed
 * instance — completed, failed, or skipped alike — strictly
 * increasing to the total. Everything finished before a stop or
 * deadline is returned untouched.
 *
 * Results are positionally ordered and independent of the thread
 * count; the sparse path matches the serial dense transient to
 * rounding (<= 1e-12 relative, property-tested).
 */

#include <functional>
#include <vector>

#include "spice/mna.h"
#include "spice/netlist.h"
#include "support/error.h"

namespace ark::telemetry {
class RunLedger;
}

namespace ark::spice {

namespace detail {

/**
 * Maps an assembly/factorization error to the structured per-instance
 * failure a sweep reports: ErrorKind::Sim (singular companion) ->
 * SingularMatrix, everything else -> BadInput. Shared between
 * TransientBatch and the engine layer's cache-backed sweep
 * (engine::Session::runSweep) so both report byte-identical failures
 * for the same event — their result parity is regression-tested in
 * engine_test.
 */
TransientFailure errorFailure(const support::ArkError &error, double t0);

} // namespace detail

/** Controls for a batched transient sweep. */
struct TransientBatchOptions
{
    /**
     * CSR assembly + shared-structure factorization reuse (the fast
     * path). Off runs the dense MnaSystem path per instance —
     * ablation benchmarks and differential tests.
     */
    bool sparse = true;

    /**
     * Worker threads; 0 picks the hardware concurrency. Rides the
     * process-wide sim::BatchRunner pool, so SPICE sweeps and ODE
     * ensembles share one set of parked workers.
     */
    unsigned numThreads = 0;

    /**
     * Optional completion callback: invoked with (completed, total)
     * as each instance finishes — including failed and skipped
     * instances — mirroring sim::EnsembleOptions::progress.
     * `completed` is strictly increasing and reaches `total` exactly
     * once. Serialized internally but possibly invoked from worker
     * threads; keep it cheap and do not call back into the batch API
     * from inside it.
     */
    std::function<void(std::size_t completed, std::size_t total)> progress;

    /**
     * Cooperative cancellation (sim::EnsembleOptions::stop parity):
     * instances not yet started are skipped, running instances abort
     * at their next step; affected results carry a
     * TransientAbort::Cancelled failure with the samples recorded
     * before the abort.
     */
    std::stop_token stop;

    /**
     * Wall-clock deadline checked at the same granularity as `stop`;
     * affected results carry TransientAbort::DeadlineExceeded, and
     * instances that finished before the cutoff are returned
     * bit-identical to an unbounded run. Unset = no deadline.
     */
    std::optional<std::chrono::steady_clock::time_point> deadline;

    /**
     * Optional flight recorder (sim::EnsembleOptions::ledger parity):
     * one telemetry::RunLedger::Record per instance at the flush
     * points the sweep already has — solve path (dense/sparse),
     * structure group as the block id, sample count, and the
     * structured failure. Observation-only; must outlive the call.
     */
    telemetry::RunLedger *ledger = nullptr;
};

/** What a batch run did, beyond the per-instance results. */
struct TransientBatchStats
{
    /**
     * Distinct netlist structures the sweep grouped into (each costs
     * one symbolic factorization). 0 on the dense ablation path,
     * which does not group.
     */
    std::size_t structureGroups = 0;
};

/**
 * Batched trapezoidal transient runner. Stateless apart from its
 * options; run() may be called concurrently from different
 * TransientBatch instances (the shared pool serializes internally).
 */
class TransientBatch
{
  public:
    explicit TransientBatch(
        TransientBatchOptions options = TransientBatchOptions{})
        : options_(options)
    {
    }

    const TransientBatchOptions &options() const { return options_; }

    /**
     * Runs every netlist over [t0, t1] with step dt from a zero
     * initial state, sampling every step. Outcomes are positionally
     * ordered; per-instance problems land in the corresponding
     * result's structured failure. `stats`, when given, receives a
     * summary of the run.
     * @throws support::SimError for dt <= 0 or t1 < t0 (batch-level
     *         misconfiguration).
     */
    std::vector<TransientResult>
    run(const std::vector<const Netlist *> &netlists, double t0,
        double t1, double dt, TransientBatchStats *stats = nullptr) const;

    /** Convenience overload for owned netlists. */
    std::vector<TransientResult>
    run(const std::vector<Netlist> &netlists, double t0, double t1,
        double dt, TransientBatchStats *stats = nullptr) const;

  private:
    TransientBatchOptions options_;
};

/**
 * Distinct structure groups a sweep of these netlists factors (the
 * same grouping TransientBatch::run applies internally). Assembly
 * only — no factorization; unassemblable netlists count no group.
 * Lets chunked sweeps report the global structure count without
 * running anything.
 */
std::size_t
countStructureGroups(const std::vector<const Netlist *> &netlists);

} // namespace ark::spice

#endif // ARK_SPICE_BATCH_H
