#include "spice/batch.h"

#include <exception>
#include <memory>
#include <mutex>
#include <optional>

#include "sim/batch.h"
#include "support/error.h"
#include "support/ledger.h"
#include "support/logging.h"
#include "support/telemetry.h"
#include "support/watchdog.h"

namespace ark::spice {

using support::cat;
using support::SimError;

namespace detail {

TransientFailure
errorFailure(const support::ArkError &error, double t0)
{
    TransientAbort reason = error.kind() == support::ErrorKind::Sim
                                ? TransientAbort::SingularMatrix
                                : TransientAbort::BadInput;
    return TransientFailure{reason, 0, t0, error.message()};
}

} // namespace detail

namespace {

using detail::errorFailure;

bool
deadlinePassed(
    const std::optional<std::chrono::steady_clock::time_point> &deadline)
{
    return deadline &&
           std::chrono::steady_clock::now() >= *deadline;
}

/**
 * Serialized (completed, total) progress dispatcher shared by both
 * batch paths; a default-constructed callback makes every tick free.
 */
class ProgressTicker
{
  public:
    ProgressTicker(
        const std::function<void(std::size_t, std::size_t)> &callback,
        std::size_t total, telemetry::StallWatchdog::Run *watchdog)
        : callback_(callback), total_(total), watchdog_(watchdog)
    {
    }

    void
    tick()
    {
        if (watchdog_ != nullptr)
            watchdog_->heartbeat();
        if (!callback_)
            return;
        std::lock_guard lock(mutex_);
        callback_(++completed_, total_);
    }

  private:
    const std::function<void(std::size_t, std::size_t)> &callback_;
    std::size_t total_;
    telemetry::StallWatchdog::Run *watchdog_;
    std::mutex mutex_;
    std::size_t completed_ = 0;
};

void
rethrowFirst(std::vector<std::exception_ptr> &errors)
{
    for (std::exception_ptr &error : errors)
        if (error)
            std::rethrow_exception(error);
}

/**
 * Groups assembled systems by shared structure. leaderOf[i] is the
 * group leader's index (or systems.size() for null slots); `leaders`
 * lists one index per group. The scan is quadratic in the number of
 * distinct structures only.
 */
void
groupByStructure(
    const std::vector<std::unique_ptr<SparseMnaSystem>> &systems,
    std::vector<std::size_t> &leaderOf, std::vector<std::size_t> &leaders)
{
    const std::size_t count = systems.size();
    leaderOf.assign(count, count);
    leaders.clear();
    for (std::size_t i = 0; i < count; ++i) {
        if (!systems[i])
            continue;
        for (std::size_t leader : leaders) {
            if (systems[leader]->sharesStructure(*systems[i])) {
                leaderOf[i] = leader;
                break;
            }
        }
        if (leaderOf[i] == count) {
            leaders.push_back(i);
            leaderOf[i] = i;
        }
    }
}

} // namespace

std::size_t
countStructureGroups(const std::vector<const Netlist *> &netlists)
{
    std::vector<std::unique_ptr<SparseMnaSystem>> systems;
    systems.reserve(netlists.size());
    for (const Netlist *netlist : netlists) {
        support::panicIf(netlist == nullptr,
                         "countStructureGroups: null netlist");
        try {
            systems.push_back(std::make_unique<SparseMnaSystem>(*netlist));
        } catch (const support::ArkError &) {
            systems.push_back(nullptr); // unassemblable: no group
        }
    }
    std::vector<std::size_t> leaderOf, leaders;
    groupByStructure(systems, leaderOf, leaders);
    return leaders.size();
}

std::vector<TransientResult>
TransientBatch::run(const std::vector<const Netlist *> &netlists,
                    double t0, double t1, double dt,
                    TransientBatchStats *stats) const
{
    if (stats)
        *stats = TransientBatchStats{};
    if (dt <= 0.0) {
        throw SimError(
            cat("TransientBatch: dt must be positive, got ", dt));
    }
    if (t1 < t0) {
        throw SimError(cat("TransientBatch: t1 (", t1, ") precedes t0 (",
                           t0, ")"));
    }
    const std::size_t count = netlists.size();
    std::vector<TransientResult> results(count);
    if (count == 0)
        return results;
    for (const Netlist *netlist : netlists)
        support::panicIf(netlist == nullptr,
                         "TransientBatch: null netlist");

    std::vector<std::exception_ptr> errors(count);
    telemetry::StallWatchdog::Run watchdogRun("spice_sweep", count);
    ProgressTicker progress(options_.progress, count, &watchdogRun);
    const TransientControl control{options_.stop, options_.deadline};
    const std::uint64_t ledgerRun =
        options_.ledger != nullptr
            ? options_.ledger->beginRun(
                  telemetry::RunLedger::Workload::Spice, count)
            : 0;
    // Per-instance ledger flush shared by both solve paths: sample
    // counts stand in for accepted steps (one sample per step plus
    // the initial state), the structure-group leader is the block id
    // on the sparse path, and failures carry their structured reason.
    auto flushLedger = [&](telemetry::RunLedger::Tier tier,
                           const std::vector<std::size_t> *leaderOf,
                           const std::vector<std::size_t> *groupSize) {
        if (options_.ledger == nullptr)
            return;
        for (std::size_t i = 0; i < count; ++i) {
            if (errors[i])
                continue;
            const TransientResult &result = results[i];
            telemetry::RunLedger::Record record;
            record.runId = ledgerRun;
            record.index = i;
            record.workload = telemetry::RunLedger::Workload::Spice;
            record.tier = tier;
            record.blockId =
                leaderOf != nullptr && (*leaderOf)[i] < count
                    ? (*leaderOf)[i]
                    : i; // unassemblable slots stand alone
            record.lanes =
                groupSize != nullptr && (*leaderOf)[i] < count
                    ? (*groupSize)[(*leaderOf)[i]]
                    : 1;
            record.stepsAccepted =
                result.ok()
                    ? (result.size() > 0 ? result.size() - 1 : 0)
                    : result.failure->step;
            record.ok = result.ok();
            if (result.failure.has_value()) {
                record.failureReason =
                    transientAbortName(result.failure->reason);
                record.failureMessage = result.failure->message;
            }
            options_.ledger->append(std::move(record));
        }
    };

    if (!options_.sparse) {
        // Dense ablation path: independent assembly + transient per
        // instance, parallelized but with no factor sharing.
        sim::BatchRunner::shared().parallelFor(
            count, options_.numThreads, [&](std::size_t i) {
                if (options_.stop.stop_requested()) {
                    // Skipped before starting: no samples at all.
                    results[i].failure = detail::cancelledFailure(t0, 0);
                } else if (deadlinePassed(options_.deadline)) {
                    results[i].failure = detail::deadlineFailure(t0, 0);
                } else {
                    try {
                        MnaSystem system(*netlists[i]);
                        results[i] =
                            transient(system, t0, t1, dt, {}, control);
                    } catch (const support::ArkError &error) {
                        results[i].failure = errorFailure(error, t0);
                    } catch (...) {
                        errors[i] = std::current_exception();
                    }
                }
                progress.tick();
            });
        flushLedger(telemetry::RunLedger::Tier::Dense, nullptr, nullptr);
        rethrowFirst(errors);
        return results;
    }

    // Phase 1: assemble every netlist (cheap, value-independent
    // structure). Assembly rejects land as BadInput failures.
    std::vector<std::unique_ptr<SparseMnaSystem>> systems(count);
    for (std::size_t i = 0; i < count; ++i) {
        try {
            systems[i] = std::make_unique<SparseMnaSystem>(*netlists[i]);
        } catch (const support::ArkError &error) {
            results[i].failure = errorFailure(error, t0);
        }
    }

    // Phase 2: group instances by shared structure.
    std::vector<std::size_t> leaderOf, leaders;
    groupByStructure(systems, leaderOf, leaders);
    if (stats)
        stats->structureGroups = leaders.size();
    if (telemetry::metricsEnabled()) {
        static telemetry::Counter &sweeps =
            telemetry::Registry::shared().counter("ark.spice.sweeps");
        static telemetry::Counter &sweepInstances =
            telemetry::Registry::shared().counter(
                "ark.spice.sweep_instances");
        static telemetry::Counter &groups =
            telemetry::Registry::shared().counter("ark.spice.groups");
        static telemetry::Histogram &groupSize =
            telemetry::Registry::shared().histogram(
                "ark.spice.group_size");
        sweeps.add();
        sweepInstances.add(count);
        groups.add(leaders.size());
        for (std::size_t leader : leaders) {
            std::uint64_t members = 0;
            for (std::size_t i = 0; i < count; ++i)
                if (leaderOf[i] == leader)
                    ++members;
            groupSize.record(members);
        }
    }
    telemetry::ScopedSpan sweepSpan("ark.spice.sweep", count);

    // Phase 3: each group leader's companion matrix is factored
    // exactly once — the symbolic analysis (and, for value-identical
    // members, the numeric factorization) the whole group reuses.
    // Factorization happens lazily inside the worker jobs under a
    // per-leader once-flag, so heterogeneous sweeps (many singleton
    // groups) factor concurrently instead of serializing up front. A
    // leader whose own values are singular leaves no shared stepper;
    // members then factor individually.
    std::vector<std::optional<TransientStepper>> leaderStepper(count);
    std::vector<std::unique_ptr<std::once_flag>> leaderOnce(count);
    for (std::size_t leader : leaders)
        leaderOnce[leader] = std::make_unique<std::once_flag>();

    // Phase 4: per-instance transient on the shared worker pool.
    // NOTE: engine::Session::runSweep mirrors this leader/share/
    // rebind/standalone resolution against its artifact cache and
    // must keep reporting bit-identical results and failures —
    // parity is pinned by engine_test; change both together.
    sim::BatchRunner::shared().parallelFor(
        count, options_.numThreads, [&](std::size_t i) {
            if (results[i].failure.has_value()) {
                progress.tick(); // assembly already failed
                return;
            }
            if (options_.stop.stop_requested()) {
                // Skipped before starting: no samples at all.
                results[i].failure = detail::cancelledFailure(t0, 0);
                progress.tick();
                return;
            }
            if (deadlinePassed(options_.deadline)) {
                results[i].failure = detail::deadlineFailure(t0, 0);
                progress.tick();
                return;
            }
            const SparseMnaSystem &system = *systems[i];
            const std::size_t leader = leaderOf[i];
            try {
                std::call_once(*leaderOnce[leader], [&] {
                    try {
                        leaderStepper[leader].emplace(*systems[leader],
                                                      dt);
                        // Non-divisible grids end on one fractional
                        // step; factor its operator once here so
                        // members share (or numerically refactor) it
                        // instead of one-off-factoring per instance.
                        leaderStepper[leader]->prepareFinalStep(
                            *systems[leader], finalStepSize(t0, t1, dt));
                    } catch (...) {
                        // Leader factorization failed (singular, out
                        // of memory, ...): leave no shared stepper;
                        // each member factors on its own and reports
                        // whatever recurs through its own handler.
                    }
                });
                std::optional<TransientStepper> own;
                const TransientStepper *stepper = nullptr;
                if (leaderStepper[leader].has_value() &&
                    system.sharesMatrixValues(*systems[leader])) {
                    // Bit-identical matrices: share the leader's
                    // factors outright (solve is const/thread-safe).
                    stepper = &*leaderStepper[leader];
                } else if (leaderStepper[leader].has_value()) {
                    // Same structure, different values: copy the
                    // symbolic skeleton and refactor numerically.
                    own.emplace(*leaderStepper[leader]);
                    own->rebind(system);
                    stepper = &*own;
                } else {
                    own.emplace(system, dt);
                    stepper = &*own;
                }
                results[i] = stepper->run(system, t0, t1, {}, control);
            } catch (const support::ArkError &error) {
                results[i].failure = errorFailure(error, t0);
            } catch (...) {
                errors[i] = std::current_exception();
            }
            progress.tick();
        });
    if (options_.ledger != nullptr) {
        std::vector<std::size_t> groupSize(count, 0);
        for (std::size_t i = 0; i < count; ++i)
            if (leaderOf[i] < count)
                ++groupSize[leaderOf[i]];
        flushLedger(telemetry::RunLedger::Tier::Sparse, &leaderOf,
                    &groupSize);
    }
    rethrowFirst(errors);
    return results;
}

std::vector<TransientResult>
TransientBatch::run(const std::vector<Netlist> &netlists, double t0,
                    double t1, double dt,
                    TransientBatchStats *stats) const
{
    std::vector<const Netlist *> pointers;
    pointers.reserve(netlists.size());
    for (const Netlist &netlist : netlists)
        pointers.push_back(&netlist);
    return run(pointers, t0, t1, dt, stats);
}

} // namespace ark::spice
