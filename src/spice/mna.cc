#include "spice/mna.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"
#include "support/logging.h"
#include "support/telemetry.h"

namespace ark::spice {

using support::cat;
using support::SemaError;
using support::SimError;

namespace detail {

MnaStamps
assembleStamps(const Netlist &netlist)
{
    MnaStamps stamps;
    stamps.numNodes = static_cast<std::size_t>(netlist.numNodes());

    // First pass: count dynamic branches (inductors, voltage sources).
    std::size_t branches = 0;
    for (const Element &elem : netlist.elements()) {
        if (elem.kind == ElemKind::Inductor ||
            elem.kind == ElemKind::VoltageSource) {
            ++branches;
        }
    }
    stamps.size = stamps.numNodes + branches;

    // Stamp helpers; ground contributions are dropped. Triplets are
    // kept even for zero values (e.g. a gm of 0) so the assembled
    // pattern depends only on the circuit structure.
    auto stampK = [&](int row, int col, double value) {
        if (row != kGround && col != kGround) {
            stamps.k.push_back(
                support::Triplet{static_cast<std::size_t>(row),
                                 static_cast<std::size_t>(col), value});
        }
    };
    auto stampM = [&](int row, int col, double value) {
        if (row != kGround && col != kGround) {
            stamps.m.push_back(
                support::Triplet{static_cast<std::size_t>(row),
                                 static_cast<std::size_t>(col), value});
        }
    };

    std::size_t nextBranch = stamps.numNodes;
    for (const Element &elem : netlist.elements()) {
        switch (elem.kind) {
          case ElemKind::Resistor: {
            double g = 1.0 / elem.value;
            stampK(elem.pos, elem.pos, g);
            stampK(elem.neg, elem.neg, g);
            stampK(elem.pos, elem.neg, -g);
            stampK(elem.neg, elem.pos, -g);
            break;
          }
          case ElemKind::Capacitor: {
            double c = elem.value;
            stampM(elem.pos, elem.pos, c);
            stampM(elem.neg, elem.neg, c);
            stampM(elem.pos, elem.neg, -c);
            stampM(elem.neg, elem.pos, -c);
            break;
          }
          case ElemKind::Inductor: {
            auto br = static_cast<int>(nextBranch++);
            // Branch equation: L di/dt - v(pos) + v(neg) = 0.
            stampM(br, br, elem.value);
            stampK(br, elem.pos, -1.0);
            stampK(br, elem.neg, 1.0);
            // KCL: current i leaves pos, enters neg.
            stampK(elem.pos, br, 1.0);
            stampK(elem.neg, br, -1.0);
            break;
          }
          case ElemKind::Vccs: {
            // i(pos -> neg) = gm * (v(ctrlPos) - v(ctrlNeg)):
            // leaves pos, enters neg.
            stampK(elem.pos, elem.ctrlPos, elem.value);
            stampK(elem.pos, elem.ctrlNeg, -elem.value);
            stampK(elem.neg, elem.ctrlPos, -elem.value);
            stampK(elem.neg, elem.ctrlNeg, elem.value);
            break;
          }
          case ElemKind::CurrentSource: {
            // Current flows pos -> neg through the source: KCL sees
            // -i at pos (leaving) as a source term on the RHS.
            if (elem.pos != kGround) {
                stamps.sources.push_back(
                    SourceEntry{static_cast<std::size_t>(elem.pos), -1.0,
                                elem.value, elem.waveform});
            }
            if (elem.neg != kGround) {
                stamps.sources.push_back(
                    SourceEntry{static_cast<std::size_t>(elem.neg), 1.0,
                                elem.value, elem.waveform});
            }
            break;
          }
          case ElemKind::VoltageSource: {
            auto br = static_cast<int>(nextBranch++);
            // Constraint row: v(pos) - v(neg) = E(t).
            stampK(br, elem.pos, 1.0);
            stampK(br, elem.neg, -1.0);
            stamps.sources.push_back(
                SourceEntry{static_cast<std::size_t>(br), 1.0,
                            elem.value, elem.waveform});
            // KCL: branch current leaves pos, enters neg.
            stampK(elem.pos, br, 1.0);
            stampK(elem.neg, br, -1.0);
            break;
          }
        }
    }
    return stamps;
}

} // namespace detail

namespace {

/** Evaluates the stamped sources into u (which must be zeroed). */
void
accumulateSources(const std::vector<detail::SourceEntry> &sources,
                  double t, double *u)
{
    for (const detail::SourceEntry &src : sources) {
        double value = src.waveform ? src.waveform(t) : src.dc;
        u[src.row] += src.sign * value;
    }
}

/** Dynamic-row mask from the structural M stamps (C/L values are
 *  validated positive, so structural presence == nonzero row). */
std::vector<bool>
dynamicRowsOf(const detail::MnaStamps &stamps)
{
    std::vector<bool> dynamic(stamps.size, false);
    for (const support::Triplet &t : stamps.m)
        dynamic[t.row] = true;
    return dynamic;
}

/** @throws SimError for out-of-contract transient arguments. */
void
checkTransientArgs(std::size_t n, double t0, double t1, double dt,
                   const std::vector<double> &x0)
{
    if (dt <= 0.0)
        throw SimError(cat("transient: dt must be positive, got ", dt));
    if (t1 < t0) {
        throw SimError(cat("transient: t1 (", t1,
                           ") precedes t0 (", t0, ")"));
    }
    if (!x0.empty() && x0.size() != n) {
        throw SimError(cat("transient: initial state has ", x0.size(),
                           " entries, system has ", n));
    }
}

/** Index of the first nonfinite entry, or -1 when all are finite. */
int
firstNonfinite(const std::vector<double> &x)
{
    for (std::size_t i = 0; i < x.size(); ++i)
        if (!std::isfinite(x[i]))
            return static_cast<int>(i);
    return -1;
}

TransientFailure
nonfiniteFailure(int unknown, double t, std::size_t step)
{
    return TransientFailure{
        TransientAbort::NonfiniteState, step, t,
        cat("unknown ", unknown, " went nonfinite at t=", t,
            " (step ", step, ")")};
}

double
stepEndEpsilon(double t1)
{
    return 1e-15 * std::max(1.0, std::fabs(t1));
}

/** Sample-count estimate for reserve(), clamped so a tiny dt cannot
 *  demand a huge up-front allocation (cf. the lane engine's clamp). */
std::size_t
sampleEstimate(double t0, double t1, double dt)
{
    constexpr double kMaxReserve = double{1 << 20};
    double steps = (t1 - t0) / dt;
    if (!(steps < kMaxReserve))
        return std::size_t{1} << 20;
    return static_cast<std::size_t>(steps) + 2;
}

TransientFailure
singularStepFailure(const support::ArkError &error, double t,
                    std::size_t step)
{
    return TransientFailure{TransientAbort::SingularMatrix, step, t,
                            error.message()};
}

/**
 * Per-step cooperative check: records a Cancelled or DeadlineExceeded
 * failure on `result` and returns true when the run must abort (stop
 * wins when both hold, matching the ODE drivers).
 */
bool
controlStopped(const TransientControl &control, double t,
               std::size_t step, TransientResult &result)
{
    if (control.stop.stop_requested()) {
        result.failure = detail::cancelledFailure(t, step);
        return true;
    }
    if (control.deadline &&
        std::chrono::steady_clock::now() >= *control.deadline) {
        result.failure = detail::deadlineFailure(t, step);
        return true;
    }
    return false;
}

/** Consistent-init matrix: identity on dynamic rows, K elsewhere. */
support::SparseMatrix
initMatrixOf(const SparseMnaSystem &system)
{
    const std::size_t n = system.size();
    const support::SparseMatrix &k = system.stiffnessMatrix();
    std::vector<support::Triplet> triplets;
    for (std::size_t r = 0; r < n; ++r) {
        if (system.rowIsDynamic(r)) {
            triplets.push_back(support::Triplet{r, r, 1.0});
        } else {
            for (std::size_t i = k.rowPtr()[r]; i < k.rowPtr()[r + 1];
                 ++i) {
                triplets.push_back(support::Triplet{
                    r, k.colIndex()[i], k.values()[i]});
            }
        }
    }
    return support::SparseMatrix::fromTriplets(n, n, triplets);
}

} // namespace

MnaSystem::MnaSystem(const Netlist &netlist)
{
    detail::MnaStamps stamps = detail::assembleStamps(netlist);
    numNodes_ = stamps.numNodes;
    size_ = stamps.size;
    m_ = support::Matrix(size_, size_);
    k_ = support::Matrix(size_, size_);
    for (const support::Triplet &t : stamps.m)
        m_(t.row, t.col) += t.value;
    for (const support::Triplet &t : stamps.k)
        k_(t.row, t.col) += t.value;
    dynamicRow_ = dynamicRowsOf(stamps);
    sources_ = std::move(stamps.sources);
}

std::vector<double>
MnaSystem::sourceVector(double t) const
{
    std::vector<double> u(size_, 0.0);
    accumulateSources(sources_, t, u.data());
    return u;
}

SparseMnaSystem::SparseMnaSystem(const Netlist &netlist)
{
    detail::MnaStamps stamps = detail::assembleStamps(netlist);
    numNodes_ = stamps.numNodes;
    size_ = stamps.size;
    m_ = support::SparseMatrix::fromTriplets(size_, size_, stamps.m);
    k_ = support::SparseMatrix::fromTriplets(size_, size_, stamps.k);
    dynamicRow_ = dynamicRowsOf(stamps);
    for (std::size_t r = 0; r < size_; ++r)
        anyAlgebraic_ |= !dynamicRow_[r];
    sources_ = std::move(stamps.sources);
}

std::vector<double>
SparseMnaSystem::sourceVector(double t) const
{
    std::vector<double> u(size_, 0.0);
    accumulateSources(sources_, t, u.data());
    return u;
}

void
SparseMnaSystem::sourceVectorInto(double t, double *u) const
{
    std::fill(u, u + size_, 0.0);
    accumulateSources(sources_, t, u);
}

support::SparseMatrix
SparseMnaSystem::companionA(double h) const
{
    std::vector<support::Triplet> triplets;
    triplets.reserve(m_.nonZeros() + k_.nonZeros());
    for (std::size_t r = 0; r < size_; ++r) {
        if (dynamicRow_[r]) {
            for (std::size_t i = m_.rowPtr()[r]; i < m_.rowPtr()[r + 1];
                 ++i) {
                triplets.push_back(support::Triplet{
                    r, m_.colIndex()[i], 2.0 * m_.values()[i] / h});
            }
        }
        for (std::size_t i = k_.rowPtr()[r]; i < k_.rowPtr()[r + 1];
             ++i) {
            triplets.push_back(support::Triplet{
                r, k_.colIndex()[i], k_.values()[i]});
        }
    }
    return support::SparseMatrix::fromTriplets(size_, size_, triplets);
}

support::SparseMatrix
SparseMnaSystem::companionB(double h) const
{
    std::vector<support::Triplet> triplets;
    triplets.reserve(m_.nonZeros() + k_.nonZeros());
    for (std::size_t r = 0; r < size_; ++r) {
        if (!dynamicRow_[r])
            continue; // algebraic rows contribute nothing to the RHS
        for (std::size_t i = m_.rowPtr()[r]; i < m_.rowPtr()[r + 1];
             ++i) {
            triplets.push_back(support::Triplet{
                r, m_.colIndex()[i], 2.0 * m_.values()[i] / h});
        }
        for (std::size_t i = k_.rowPtr()[r]; i < k_.rowPtr()[r + 1];
             ++i) {
            triplets.push_back(support::Triplet{
                r, k_.colIndex()[i], -k_.values()[i]});
        }
    }
    return support::SparseMatrix::fromTriplets(size_, size_, triplets);
}

bool
SparseMnaSystem::sharesStructure(const SparseMnaSystem &other) const
{
    if (size_ != other.size_ || numNodes_ != other.numNodes_ ||
        dynamicRow_ != other.dynamicRow_ ||
        sources_.size() != other.sources_.size() ||
        !m_.samePattern(other.m_) || !k_.samePattern(other.k_)) {
        return false;
    }
    for (std::size_t i = 0; i < sources_.size(); ++i) {
        if (sources_[i].row != other.sources_[i].row ||
            sources_[i].sign != other.sources_[i].sign) {
            return false;
        }
    }
    return true;
}

bool
SparseMnaSystem::sharesMatrixValues(const SparseMnaSystem &other) const
{
    return sharesStructure(other) && m_.sameValues(other.m_) &&
           k_.sameValues(other.k_);
}

void
TransientResult::reserve(std::size_t samples, std::size_t dim)
{
    times_.reserve(samples);
    states_.reserve(samples * dim);
}

void
TransientResult::addSample(double t, const double *state, std::size_t dim)
{
    if (dim_ == 0)
        dim_ = dim;
    support::panicIf(dim != dim_,
                     "TransientResult::addSample dimension mismatch");
    times_.push_back(t);
    states_.insert(states_.end(), state, state + dim);
}

std::span<const double>
TransientResult::state(std::size_t sample) const
{
    support::panicIf(sample >= times_.size(),
                     "TransientResult::state out of range");
    return {states_.data() + sample * dim_, dim_};
}

std::vector<double>
TransientResult::series(std::size_t unknown) const
{
    support::panicIf(!times_.empty() && unknown >= dim_,
                     "TransientResult::series unknown out of range");
    std::vector<double> out;
    out.reserve(times_.size());
    for (std::size_t s = 0; s < times_.size(); ++s)
        out.push_back(states_[s * dim_ + unknown]);
    return out;
}

const char *
transientAbortName(TransientAbort reason)
{
    switch (reason) {
    case TransientAbort::BadInput:
        return "bad_input";
    case TransientAbort::SingularMatrix:
        return "singular_matrix";
    case TransientAbort::NonfiniteState:
        return "nonfinite_state";
    case TransientAbort::Cancelled:
        return "cancelled";
    case TransientAbort::DeadlineExceeded:
        return "deadline_exceeded";
    }
    return "unknown";
}

TransientFailure
detail::cancelledFailure(double t, std::size_t step)
{
    return TransientFailure{TransientAbort::Cancelled, step, t,
                            cat("cancelled at t=", t)};
}

TransientFailure
detail::deadlineFailure(double t, std::size_t step)
{
    return TransientFailure{TransientAbort::DeadlineExceeded, step, t,
                            cat("deadline exceeded at t=", t)};
}

TransientResult
transient(const MnaSystem &system, double t0, double t1, double dt,
          const std::vector<double> &x0, const TransientControl &control)
{
    const std::size_t n = system.size();
    checkTransientArgs(n, t0, t1, dt, x0);
    std::vector<double> x = x0.empty() ? std::vector<double>(n, 0.0) : x0;

    const support::Matrix &m = system.massMatrix();
    const support::Matrix &k = system.stiffnessMatrix();

    // Consistent initialization: dynamic unknowns keep their given
    // initial values, but algebraic rows (voltage-source constraints,
    // resistive nodes) must hold at t0 as well — otherwise the first
    // trapezoidal step sees sources half-off.
    {
        bool anyAlgebraic = false;
        for (std::size_t r = 0; r < n; ++r)
            anyAlgebraic |= !system.rowIsDynamic(r);
        if (anyAlgebraic) {
            support::Matrix init(n, n);
            std::vector<double> rhs0(n, 0.0);
            std::vector<double> uInit = system.sourceVector(t0);
            for (std::size_t r = 0; r < n; ++r) {
                if (system.rowIsDynamic(r)) {
                    init(r, r) = 1.0;
                    rhs0[r] = x[r];
                } else {
                    for (std::size_t c = 0; c < n; ++c)
                        init(r, c) = k(r, c);
                    rhs0[r] = uInit[r];
                }
            }
            support::LuSolver initSolver(std::move(init));
            x = initSolver.solve(rhs0);
        }
    }

    TransientResult result;
    result.reserve(sampleEstimate(t0, t1, dt), n);
    // A pre-triggered stop or already-passed deadline retires the run
    // before any sample lands, matching the batch path's skip.
    if (controlStopped(control, t0, 0, result))
        return result;
    if (int bad = firstNonfinite(x); bad >= 0) {
        result.failure = nonfiniteFailure(bad, t0, 0);
        return result;
    }
    result.addSample(t0, x.data(), n);
    if (t1 == t0)
        return result;

    // Companion matrices: A x1 = B x0 + (u0 + u1) on dynamic rows;
    // algebraic rows enforce K x1 = u1 exactly.
    support::Matrix a(n, n);
    support::Matrix b(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        if (system.rowIsDynamic(r)) {
            for (std::size_t c = 0; c < n; ++c) {
                a(r, c) = 2.0 * m(r, c) / dt + k(r, c);
                b(r, c) = 2.0 * m(r, c) / dt - k(r, c);
            }
        } else {
            for (std::size_t c = 0; c < n; ++c) {
                a(r, c) = k(r, c);
                b(r, c) = 0.0;
            }
        }
    }
    support::LuSolver solver(std::move(a));

    double t = t0;
    std::size_t step = 0;
    std::vector<double> u0 = system.sourceVector(t0);
    while (t < t1 - stepEndEpsilon(t1)) {
        if (controlStopped(control, t, step, result))
            return result;
        double h = std::min(dt, t1 - t);
        // Fixed step assumed; a final short step reuses the factored
        // matrix only when h == dt, otherwise refactor.
        std::vector<double> u1 = system.sourceVector(t + h);
        if (h == dt) {
            std::vector<double> rhs = b.apply(x);
            for (std::size_t r = 0; r < n; ++r) {
                if (system.rowIsDynamic(r))
                    rhs[r] += u0[r] + u1[r];
                else
                    rhs[r] = u1[r];
            }
            x = solver.solve(rhs);
        } else {
            support::Matrix aShort(n, n);
            for (std::size_t r = 0; r < n; ++r) {
                for (std::size_t c = 0; c < n; ++c) {
                    if (system.rowIsDynamic(r)) {
                        aShort(r, c) = 2.0 * m(r, c) / h + k(r, c);
                    } else {
                        aShort(r, c) = k(r, c);
                    }
                }
            }
            // Rebuild the RHS with the short-step mass scaling.
            std::vector<double> rhsShort(n, 0.0);
            for (std::size_t r = 0; r < n; ++r) {
                if (system.rowIsDynamic(r)) {
                    double acc = 0.0;
                    for (std::size_t c = 0; c < n; ++c) {
                        acc += (2.0 * m(r, c) / h - k(r, c)) * x[c];
                    }
                    rhsShort[r] = acc + u0[r] + u1[r];
                } else {
                    rhsShort[r] = u1[r];
                }
            }
            // A singular short-step companion is a mid-run event: it
            // must not discard the trajectory recorded so far.
            try {
                support::LuSolver shortSolver(std::move(aShort));
                x = shortSolver.solve(rhsShort);
            } catch (const support::ArkError &error) {
                result.failure = singularStepFailure(error, t, step);
                return result;
            }
        }
        t += h;
        ++step;
        u0 = std::move(u1);
        if (int bad = firstNonfinite(x); bad >= 0) {
            result.failure = nonfiniteFailure(bad, t, step);
            return result;
        }
        result.addSample(t, x.data(), n);
    }
    return result;
}

namespace {

/** Counted, timed full factorization of a companion matrix. */
support::SparseLu
timedFactor(const support::SparseMatrix &a)
{
    static telemetry::Counter &factors =
        telemetry::Registry::shared().counter("ark.spice.factors");
    static telemetry::Histogram &factorNs =
        telemetry::Registry::shared().histogram("ark.spice.factor_ns");
    telemetry::ScopedSpan span("ark.spice.factor");
    telemetry::ScopedTimer timer(factorNs);
    factors.add();
    return support::SparseLu(a);
}

} // namespace

TransientStepper::TransientStepper(const SparseMnaSystem &system,
                                   double dt)
    : dt_((checkTransientArgs(system.size(), 0.0, 0.0, dt, {}), dt)),
      a_(system.companionA(dt)), b_(system.companionB(dt)),
      lu_(timedFactor(a_))
{
    if (system.anyAlgebraicRow()) {
        initA_ = initMatrixOf(system);
        initLu_.emplace(initA_);
    }
}

double
finalStepSize(double t0, double t1, double dt)
{
    // Mirror the stepping loop exactly: t accumulates by repeated
    // addition, so the final remainder carries the same rounding the
    // integrator will compute.
    double t = t0;
    double h = dt;
    while (t < t1 - stepEndEpsilon(t1)) {
        h = std::min(dt, t1 - t);
        t += h;
    }
    return h;
}

void
TransientStepper::prepareFinalStep(const SparseMnaSystem &system,
                                   double h)
{
    finalLu_.reset();
    finalA_ = support::SparseMatrix();
    finalB_ = support::SparseMatrix();
    finalH_ = 0.0;
    if (!(h > 0.0) || h == dt_)
        return; // no fractional final step on this grid
    // A singular final companion is a per-run event on the one-off
    // path; keep that contract by simply not preparing the operator.
    try {
        support::SparseMatrix a = system.companionA(h);
        support::SparseMatrix b = system.companionB(h);
        finalLu_.emplace(a);
        finalA_ = std::move(a);
        finalB_ = std::move(b);
        finalH_ = h;
    } catch (const support::ArkError &) {
        finalLu_.reset();
        finalA_ = support::SparseMatrix();
        finalB_ = support::SparseMatrix();
        finalH_ = 0.0;
    }
}

void
TransientStepper::rebind(const SparseMnaSystem &system)
{
    // Refactor-or-fresh: reuse the recorded pivot order when it
    // survives the new values, fall back to a fresh factorization
    // with its own pivoting otherwise (which rethrows if the matrix
    // is genuinely singular).
    auto rebindFactor = [](support::SparseLu &lu,
                           const support::SparseMatrix &matrix) {
        try {
            static telemetry::Counter &refactors =
                telemetry::Registry::shared().counter(
                    "ark.spice.refactors");
            static telemetry::Histogram &refactorNs =
                telemetry::Registry::shared().histogram(
                    "ark.spice.refactor_ns");
            telemetry::ScopedSpan span("ark.spice.refactor");
            telemetry::ScopedTimer timer(refactorNs);
            refactors.add();
            lu.refactor(matrix);
        } catch (const support::ArkError &) {
            lu = timedFactor(matrix);
        }
    };

    // On any factorization failure the partially overwritten factors
    // are unusable; empty the cached matrices before rethrowing so a
    // later rebind with the old values cannot take the
    // matching-values fast path over corrupted factors.
    auto poison = [&] {
        a_ = support::SparseMatrix();
        b_ = support::SparseMatrix();
        initA_ = support::SparseMatrix();
        finalA_ = support::SparseMatrix();
        finalB_ = support::SparseMatrix();
        finalLu_.reset();
        finalH_ = 0.0;
    };

    support::SparseMatrix a = system.companionA(dt_);
    support::SparseMatrix b = system.companionB(dt_);
    if (!(a.sameValues(a_) && b.sameValues(b_))) {
        try {
            rebindFactor(lu_, a);
        } catch (...) {
            poison();
            throw;
        }
        a_ = std::move(a);
        b_ = std::move(b);
    }
    if (initLu_.has_value()) {
        support::SparseMatrix init = initMatrixOf(system);
        if (!init.sameValues(initA_)) {
            try {
                rebindFactor(*initLu_, init);
            } catch (...) {
                poison();
                throw;
            }
            initA_ = std::move(init);
        }
    }
    if (finalLu_.has_value()) {
        // The prepared fractional-final-step operator follows the
        // main factors: numeric refactorization on the new values. A
        // singular final companion is a per-run event on the one-off
        // path, so here it just drops the prepared operator instead
        // of poisoning the stepper.
        support::SparseMatrix a = system.companionA(finalH_);
        support::SparseMatrix b = system.companionB(finalH_);
        if (!(a.sameValues(finalA_) && b.sameValues(finalB_))) {
            try {
                rebindFactor(*finalLu_, a);
                finalA_ = std::move(a);
                finalB_ = std::move(b);
            } catch (const support::ArkError &) {
                finalA_ = support::SparseMatrix();
                finalB_ = support::SparseMatrix();
                finalLu_.reset();
                finalH_ = 0.0;
            }
        }
    }
}

TransientResult
TransientStepper::run(const SparseMnaSystem &system, double t0, double t1,
                      const std::vector<double> &x0,
                      const TransientControl &control) const
{
    const std::size_t n = system.size();
    checkTransientArgs(n, t0, t1, dt_, x0);
    std::vector<double> x = x0.empty() ? std::vector<double>(n, 0.0) : x0;

    // Consistent initialization of algebraic rows, as in the dense
    // path, through the pre-factored init operator.
    if (system.anyAlgebraicRow()) {
        support::panicIf(!initLu_.has_value(),
                         "TransientStepper: system has algebraic rows "
                         "but no init factorization is bound");
        std::vector<double> rhs0(n, 0.0);
        std::vector<double> uInit = system.sourceVector(t0);
        for (std::size_t r = 0; r < n; ++r)
            rhs0[r] = system.rowIsDynamic(r) ? x[r] : uInit[r];
        x = initLu_->solve(rhs0);
    }

    TransientResult result;
    result.reserve(sampleEstimate(t0, t1, dt_), n);
    // A pre-triggered stop or already-passed deadline retires the run
    // before any sample lands, matching the batch path's skip.
    if (controlStopped(control, t0, 0, result))
        return result;
    if (int bad = firstNonfinite(x); bad >= 0) {
        result.failure = nonfiniteFailure(bad, t0, 0);
        return result;
    }
    result.addSample(t0, x.data(), n);
    if (t1 == t0)
        return result;

    std::vector<double> u0(n), u1(n), rhs(n), xNext(n);
    system.sourceVectorInto(t0, u0.data());
    double t = t0;
    std::size_t step = 0;
    while (t < t1 - stepEndEpsilon(t1)) {
        if (controlStopped(control, t, step, result))
            return result;
        double h = std::min(dt_, t1 - t);
        system.sourceVectorInto(t + h, u1.data());
        if (h == dt_) {
            b_.applyInto(x.data(), rhs.data());
            for (std::size_t r = 0; r < n; ++r) {
                if (system.rowIsDynamic(r))
                    rhs[r] += u0[r] + u1[r];
                else
                    rhs[r] = u1[r];
            }
            lu_.solveInto(rhs.data(), xNext.data());
        } else if (finalLu_.has_value() && h == finalH_) {
            // Fractional final step through the prepared shared
            // operator (prepareFinalStep): back-substitution only, no
            // per-instance factorization.
            finalB_.applyInto(x.data(), rhs.data());
            for (std::size_t r = 0; r < n; ++r) {
                if (system.rowIsDynamic(r))
                    rhs[r] += u0[r] + u1[r];
                else
                    rhs[r] = u1[r];
            }
            finalLu_->solveInto(rhs.data(), xNext.data());
        } else {
            // Short final step: one-off companion operator at h. A
            // singular factorization here is a mid-run event — report
            // it structurally and keep the recorded trajectory.
            try {
                support::SparseMatrix bShort = system.companionB(h);
                support::SparseLu shortLu(system.companionA(h));
                bShort.applyInto(x.data(), rhs.data());
                for (std::size_t r = 0; r < n; ++r) {
                    if (system.rowIsDynamic(r))
                        rhs[r] += u0[r] + u1[r];
                    else
                        rhs[r] = u1[r];
                }
                shortLu.solveInto(rhs.data(), xNext.data());
            } catch (const support::ArkError &error) {
                result.failure = singularStepFailure(error, t, step);
                return result;
            }
        }
        x.swap(xNext);
        t += h;
        ++step;
        u0.swap(u1);
        if (int bad = firstNonfinite(x); bad >= 0) {
            result.failure = nonfiniteFailure(bad, t, step);
            return result;
        }
        result.addSample(t, x.data(), n);
    }
    return result;
}

TransientResult
transient(const SparseMnaSystem &system, double t0, double t1, double dt,
          const std::vector<double> &x0, const TransientControl &control)
{
    checkTransientArgs(system.size(), t0, t1, dt, x0);
    TransientStepper stepper(system, dt);
    return stepper.run(system, t0, t1, x0, control);
}

std::vector<double>
transientNodeVoltage(const Netlist &netlist, int node, double t0,
                     double t1, double dt)
{
    MnaSystem system(netlist);
    TransientResult result = transient(system, t0, t1, dt);
    return result.series(static_cast<std::size_t>(node));
}

} // namespace ark::spice
