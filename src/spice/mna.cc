#include "spice/mna.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"
#include "support/logging.h"

namespace ark::spice {

using support::cat;
using support::SemaError;

MnaSystem::MnaSystem(const Netlist &netlist)
    : numNodes_(static_cast<std::size_t>(netlist.numNodes()))
{
    // First pass: count dynamic branches (inductors, voltage sources).
    std::size_t branches = 0;
    for (const Element &elem : netlist.elements()) {
        if (elem.kind == ElemKind::Inductor ||
            elem.kind == ElemKind::VoltageSource) {
            ++branches;
        }
    }
    size_ = numNodes_ + branches;
    m_ = support::Matrix(size_, size_);
    k_ = support::Matrix(size_, size_);
    dynamicRow_.assign(size_, false);

    // Stamp helpers; ground contributions are dropped.
    auto stampK = [&](int row, int col, double value) {
        if (row != kGround && col != kGround)
            k_(static_cast<std::size_t>(row),
               static_cast<std::size_t>(col)) += value;
    };
    auto stampM = [&](int row, int col, double value) {
        if (row != kGround && col != kGround) {
            m_(static_cast<std::size_t>(row),
               static_cast<std::size_t>(col)) += value;
        }
    };

    std::size_t nextBranch = numNodes_;
    for (const Element &elem : netlist.elements()) {
        switch (elem.kind) {
          case ElemKind::Resistor: {
            double g = 1.0 / elem.value;
            stampK(elem.pos, elem.pos, g);
            stampK(elem.neg, elem.neg, g);
            stampK(elem.pos, elem.neg, -g);
            stampK(elem.neg, elem.pos, -g);
            break;
          }
          case ElemKind::Capacitor: {
            double c = elem.value;
            stampM(elem.pos, elem.pos, c);
            stampM(elem.neg, elem.neg, c);
            stampM(elem.pos, elem.neg, -c);
            stampM(elem.neg, elem.pos, -c);
            break;
          }
          case ElemKind::Inductor: {
            auto br = static_cast<int>(nextBranch++);
            // Branch equation: L di/dt - v(pos) + v(neg) = 0.
            stampM(br, br, elem.value);
            stampK(br, elem.pos, -1.0);
            stampK(br, elem.neg, 1.0);
            // KCL: current i leaves pos, enters neg.
            stampK(elem.pos, br, 1.0);
            stampK(elem.neg, br, -1.0);
            break;
          }
          case ElemKind::Vccs: {
            // i(pos -> neg) = gm * (v(ctrlPos) - v(ctrlNeg)):
            // leaves pos, enters neg.
            stampK(elem.pos, elem.ctrlPos, elem.value);
            stampK(elem.pos, elem.ctrlNeg, -elem.value);
            stampK(elem.neg, elem.ctrlPos, -elem.value);
            stampK(elem.neg, elem.ctrlNeg, elem.value);
            break;
          }
          case ElemKind::CurrentSource: {
            // Current flows pos -> neg through the source: KCL sees
            // -i at pos (leaving) as a source term on the RHS.
            if (elem.pos != kGround) {
                sources_.push_back(
                    SourceEntry{static_cast<std::size_t>(elem.pos), -1.0,
                                elem.value, elem.waveform});
            }
            if (elem.neg != kGround) {
                sources_.push_back(
                    SourceEntry{static_cast<std::size_t>(elem.neg), 1.0,
                                elem.value, elem.waveform});
            }
            break;
          }
          case ElemKind::VoltageSource: {
            auto br = static_cast<int>(nextBranch++);
            // Constraint row: v(pos) - v(neg) = E(t).
            stampK(br, elem.pos, 1.0);
            stampK(br, elem.neg, -1.0);
            sources_.push_back(
                SourceEntry{static_cast<std::size_t>(br), 1.0,
                            elem.value, elem.waveform});
            // KCL: branch current leaves pos, enters neg.
            stampK(elem.pos, br, 1.0);
            stampK(elem.neg, br, -1.0);
            break;
          }
        }
    }

    for (std::size_t r = 0; r < size_; ++r) {
        for (std::size_t c = 0; c < size_; ++c) {
            if (m_(r, c) != 0.0) {
                dynamicRow_[r] = true;
                break;
            }
        }
    }
}

std::vector<double>
MnaSystem::sourceVector(double t) const
{
    std::vector<double> u(size_, 0.0);
    for (const SourceEntry &src : sources_) {
        double value = src.waveform ? src.waveform(t) : src.dc;
        u[src.row] += src.sign * value;
    }
    return u;
}

std::vector<double>
TransientResult::series(std::size_t unknown) const
{
    std::vector<double> out;
    out.reserve(states.size());
    for (const auto &state : states)
        out.push_back(state.at(unknown));
    return out;
}

TransientResult
transient(const MnaSystem &system, double t0, double t1, double dt,
          const std::vector<double> &x0)
{
    if (t1 <= t0 || dt <= 0)
        throw SemaError("transient: bad time range or step");
    const std::size_t n = system.size();
    std::vector<double> x = x0.empty() ? std::vector<double>(n, 0.0) : x0;
    if (x.size() != n)
        throw SemaError("transient: initial state size mismatch");

    const support::Matrix &m = system.massMatrix();
    const support::Matrix &k = system.stiffnessMatrix();

    // Consistent initialization: dynamic unknowns keep their given
    // initial values, but algebraic rows (voltage-source constraints,
    // resistive nodes) must hold at t0 as well — otherwise the first
    // trapezoidal step sees sources half-off.
    {
        bool anyAlgebraic = false;
        for (std::size_t r = 0; r < n; ++r)
            anyAlgebraic |= !system.rowIsDynamic(r);
        if (anyAlgebraic) {
            support::Matrix init(n, n);
            std::vector<double> rhs0(n, 0.0);
            std::vector<double> uInit = system.sourceVector(t0);
            for (std::size_t r = 0; r < n; ++r) {
                if (system.rowIsDynamic(r)) {
                    init(r, r) = 1.0;
                    rhs0[r] = x[r];
                } else {
                    for (std::size_t c = 0; c < n; ++c)
                        init(r, c) = k(r, c);
                    rhs0[r] = uInit[r];
                }
            }
            support::LuSolver initSolver(std::move(init));
            x = initSolver.solve(rhs0);
        }
    }

    // Companion matrices: A x1 = B x0 + (u0 + u1) on dynamic rows;
    // algebraic rows enforce K x1 = u1 exactly.
    support::Matrix a(n, n);
    support::Matrix b(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        if (system.rowIsDynamic(r)) {
            for (std::size_t c = 0; c < n; ++c) {
                a(r, c) = 2.0 * m(r, c) / dt + k(r, c);
                b(r, c) = 2.0 * m(r, c) / dt - k(r, c);
            }
        } else {
            for (std::size_t c = 0; c < n; ++c) {
                a(r, c) = k(r, c);
                b(r, c) = 0.0;
            }
        }
    }
    support::LuSolver solver(std::move(a));

    TransientResult result;
    result.times.push_back(t0);
    result.states.push_back(x);

    double t = t0;
    std::vector<double> u0 = system.sourceVector(t0);
    while (t < t1 - 1e-15 * std::max(1.0, std::fabs(t1))) {
        double h = std::min(dt, t1 - t);
        // Fixed step assumed; a final short step reuses the factored
        // matrix only when h == dt, otherwise refactor.
        std::vector<double> u1 = system.sourceVector(t + h);
        std::vector<double> rhs = b.apply(x);
        for (std::size_t r = 0; r < n; ++r) {
            if (system.rowIsDynamic(r))
                rhs[r] += u0[r] + u1[r];
            else
                rhs[r] = u1[r];
        }
        if (h == dt) {
            x = solver.solve(rhs);
        } else {
            support::Matrix aShort(n, n);
            for (std::size_t r = 0; r < n; ++r) {
                for (std::size_t c = 0; c < n; ++c) {
                    if (system.rowIsDynamic(r)) {
                        aShort(r, c) = 2.0 * m(r, c) / h + k(r, c);
                    } else {
                        aShort(r, c) = k(r, c);
                    }
                }
            }
            // Rebuild the RHS with the short-step mass scaling.
            std::vector<double> rhsShort(n, 0.0);
            for (std::size_t r = 0; r < n; ++r) {
                if (system.rowIsDynamic(r)) {
                    double acc = 0.0;
                    for (std::size_t c = 0; c < n; ++c) {
                        acc += (2.0 * m(r, c) / h - k(r, c)) * x[c];
                    }
                    rhsShort[r] = acc + u0[r] + u1[r];
                } else {
                    rhsShort[r] = u1[r];
                }
            }
            support::LuSolver shortSolver(std::move(aShort));
            x = shortSolver.solve(rhsShort);
        }
        t += h;
        u0 = std::move(u1);
        result.times.push_back(t);
        result.states.push_back(x);
    }
    return result;
}

std::vector<double>
transientNodeVoltage(const Netlist &netlist, int node, double t0,
                     double t1, double dt)
{
    MnaSystem system(netlist);
    TransientResult result = transient(system, t0, t1, dt);
    return result.series(static_cast<std::size_t>(node));
}

} // namespace ark::spice
