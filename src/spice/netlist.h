#ifndef ARK_SPICE_NETLIST_H
#define ARK_SPICE_NETLIST_H

/**
 * @file
 * Circuit netlists for the SPICE-class simulation substrate.
 *
 * The paper's §4.5 empirical validation maps GmC-TLN dynamical graphs
 * onto SPICE netlists and cross-checks transient dynamics. This
 * module provides the netlist representation (R, C, L, VCCS, and
 * independent sources with optional time-varying waveforms) plus
 * SPICE-card text emission; mna.h simulates them.
 */

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace ark::spice {

/** Ground node id. */
inline constexpr int kGround = -1;

/** Circuit element categories. */
enum class ElemKind : std::uint8_t {
    Resistor,      ///< value = resistance (ohm).
    Capacitor,     ///< value = capacitance (F).
    Inductor,      ///< value = inductance (H).
    Vccs,          ///< value = transconductance gm (S);
                   ///< i(pos->neg) = gm * (v(ctrlPos) - v(ctrlNeg)).
    CurrentSource, ///< value = DC amps; waveform overrides.
    VoltageSource, ///< value = DC volts; waveform overrides.
};

const char *elemKindName(ElemKind kind);

/** Time-varying source waveform. */
using Waveform = std::function<double(double)>;

/** One circuit element. */
struct Element
{
    ElemKind kind = ElemKind::Resistor;
    std::string name;
    int pos = kGround;
    int neg = kGround;
    double value = 0.0;
    int ctrlPos = kGround; ///< VCCS only.
    int ctrlNeg = kGround; ///< VCCS only.
    Waveform waveform;     ///< Sources only; null = DC.
};

/**
 * A flat netlist over numbered nodes (0..numNodes-1) plus ground.
 */
class Netlist
{
  public:
    /** Adds a named node; returns its id. */
    int addNode(const std::string &name);

    /** Id of a named node. @throws SemaError when unknown. */
    int node(const std::string &name) const;

    int numNodes() const { return static_cast<int>(nodeNames_.size()); }
    const std::vector<std::string> &nodeNames() const { return nodeNames_; }

    /** @name Element constructors (all validate node ids). */
    /// @{
    void resistor(const std::string &name, int pos, int neg, double ohms);
    void capacitor(const std::string &name, int pos, int neg,
                   double farads);
    void inductor(const std::string &name, int pos, int neg,
                  double henries);
    void vccs(const std::string &name, int pos, int neg, int ctrlPos,
              int ctrlNeg, double gm);
    void currentSource(const std::string &name, int pos, int neg,
                       double amps, Waveform waveform = nullptr);
    void voltageSource(const std::string &name, int pos, int neg,
                       double volts, Waveform waveform = nullptr);
    /// @}

    const std::vector<Element> &elements() const { return elements_; }

    /** SPICE-deck text (.title/.tran cards omitted; elements only). */
    std::string spiceText() const;

  private:
    std::vector<std::string> nodeNames_;
    std::vector<Element> elements_;

    void checkNode(int node, const std::string &what) const;
};

} // namespace ark::spice

#endif // ARK_SPICE_NETLIST_H
