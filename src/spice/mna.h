#ifndef ARK_SPICE_MNA_H
#define ARK_SPICE_MNA_H

/**
 * @file
 * Modified nodal analysis and trapezoidal transient simulation.
 *
 * Unknowns are the node voltages plus one branch current per inductor
 * and per voltage source. The assembled system is
 * M dx/dt + K x = u(t); transient analysis integrates it with the
 * trapezoidal rule (what SPICE uses for such circuits), factoring
 * (2M/h + K) once per run. Rows with no dynamic term (voltage-source
 * constraints) are enforced exactly at each step.
 *
 * Two assembly paths share one stamping pass:
 *
 *  - MnaSystem: dense M/K (support::Matrix + LuSolver). Right for
 *    one-off circuits of a few dozen unknowns; every transient pays a
 *    fresh O(n^3) factorization and O(n^2) per step.
 *  - SparseMnaSystem: CSR M/K (support::SparseMatrix + SparseLu).
 *    Cost scales with the stamp count, and — the batch engine's whole
 *    point — the companion factorization's pivot order and fill
 *    pattern depend only on the sparsity structure, so a sweep of
 *    same-topology netlists analyzes symbolically once, refactors
 *    numerically per instance (or shares the factors outright when
 *    the matrix values match bit-for-bit), and back-substitutes per
 *    step. spice::TransientBatch (batch.h) automates that grouping;
 *    results match the dense path to rounding (property-tested at
 *    <= 1e-12).
 *
 * Configuration errors (nonpositive dt, reversed time range, wrong
 * initial-state size) throw a structured support::SimError; a state
 * that goes nonfinite mid-run stops early with a structured
 * TransientResult::failure instead, keeping the samples recorded
 * before the failure.
 */

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <stop_token>
#include <string>
#include <vector>

#include "spice/netlist.h"
#include "support/linalg.h"
#include "support/sparse.h"

namespace ark::spice {

namespace detail {

/** One u(t) contribution: (row, sign, waveform/value). */
struct SourceEntry
{
    std::size_t row;
    double sign;
    double dc;
    Waveform waveform;
};

/** Stamping pass output shared by the dense and sparse assemblers. */
struct MnaStamps
{
    std::size_t numNodes = 0;
    std::size_t size = 0;
    std::vector<support::Triplet> m;
    std::vector<support::Triplet> k;
    std::vector<SourceEntry> sources;
};

/** @throws SemaError for malformed circuits. */
MnaStamps assembleStamps(const Netlist &netlist);

} // namespace detail

/** Assembled MNA system (dense storage). */
class MnaSystem
{
  public:
    /** @throws SemaError for malformed circuits. */
    explicit MnaSystem(const Netlist &netlist);

    /** Total unknowns (nodes + dynamic branches). */
    std::size_t size() const { return size_; }

    std::size_t numNodeUnknowns() const { return numNodes_; }

    const support::Matrix &massMatrix() const { return m_; }
    const support::Matrix &stiffnessMatrix() const { return k_; }

    /** Source vector u(t). */
    std::vector<double> sourceVector(double t) const;

    /** True when row r has any dynamic (M) entry. */
    bool rowIsDynamic(std::size_t r) const { return dynamicRow_[r]; }

  private:
    std::size_t numNodes_;
    std::size_t size_;
    support::Matrix m_;
    support::Matrix k_;
    std::vector<bool> dynamicRow_;
    std::vector<detail::SourceEntry> sources_;
};

/**
 * Assembled MNA system (CSR storage). Same stamps, same semantics as
 * MnaSystem; feeds the sparse transient path and the batch engine.
 */
class SparseMnaSystem
{
  public:
    /** @throws SemaError for malformed circuits. */
    explicit SparseMnaSystem(const Netlist &netlist);

    std::size_t size() const { return size_; }
    std::size_t numNodeUnknowns() const { return numNodes_; }

    const support::SparseMatrix &massMatrix() const { return m_; }
    const support::SparseMatrix &stiffnessMatrix() const { return k_; }

    std::vector<double> sourceVector(double t) const;
    /** Allocation-free u(t); `u` must hold size() entries. */
    void sourceVectorInto(double t, double *u) const;

    bool rowIsDynamic(std::size_t r) const { return dynamicRow_[r]; }
    bool anyAlgebraicRow() const { return anyAlgebraic_; }

    /**
     * Trapezoidal companion matrices for step h: on dynamic rows
     * A = 2M/h + K and B = 2M/h - K; algebraic rows carry K in A and
     * nothing in B (the constraint is enforced exactly each step).
     * The pattern depends only on the stamp positions, never the
     * values, so same-structure systems produce samePattern matrices.
     */
    support::SparseMatrix companionA(double h) const;
    support::SparseMatrix companionB(double h) const;

    /**
     * True when `other` assembles the same structure: same unknowns,
     * same M/K sparsity patterns, same dynamic-row mask, and same
     * source placement (rows/signs; waveforms are RHS-only and do not
     * affect factorization). Such systems share one symbolic
     * factorization in TransientBatch.
     */
    bool sharesStructure(const SparseMnaSystem &other) const;

    /** sharesStructure plus bit-identical M/K values: the companion
     *  factors themselves can be shared (no per-instance refactor). */
    bool sharesMatrixValues(const SparseMnaSystem &other) const;

    /** Assembled u(t) contributions (rows, signs, dc, waveform) —
     *  exposed for the engine layer's structural fingerprinting. */
    const std::vector<detail::SourceEntry> &sources() const
    {
        return sources_;
    }

  private:
    std::size_t numNodes_;
    std::size_t size_;
    support::SparseMatrix m_;
    support::SparseMatrix k_;
    std::vector<bool> dynamicRow_;
    bool anyAlgebraic_ = false;
    std::vector<detail::SourceEntry> sources_;
};

/**
 * Why a transient run stopped before t1.
 *
 * Failure taxonomy (mirroring sim::AbortReason on the ODE side):
 * every entry is an instance-level outcome reported as a structured
 * TransientResult::failure on exactly the affected instance, so one
 * bad sweep member can never abort its batch. Exceptions remain
 * reserved for caller errors on the single-instance entry points.
 */
enum class TransientAbort : std::uint8_t {
    BadInput,        ///< Rejected configuration (batch path only).
    SingularMatrix,  ///< Companion factorization failed (batch path only).
    NonfiniteState,  ///< An unknown went NaN/Inf mid-run.
    Cancelled,        ///< The batch's stop token was triggered.
    DeadlineExceeded, ///< The wall-clock deadline passed mid-run.
};

/** Stable lower-case spelling for logs and ledger exports. */
const char *transientAbortName(TransientAbort reason);

/** Structured early-stop report for a transient run. */
struct TransientFailure
{
    TransientAbort reason = TransientAbort::NonfiniteState;
    std::size_t step = 0; ///< Completed steps when detected.
    double time = 0.0;    ///< Integration time reached.
    std::string message;  ///< Human-readable summary.
};

/**
 * Cooperative execution controls for a transient run, checked once
 * per step — the SPICE-side counterpart of the stop/deadline pair in
 * sim::EnsembleOptions. A triggered stop token aborts the run with a
 * Cancelled failure at the next step boundary; a passed deadline
 * aborts with DeadlineExceeded (stop wins when both hold). Samples
 * recorded before the abort are kept. Default-constructed controls
 * never fire.
 */
struct TransientControl
{
    std::stop_token stop;
    std::optional<std::chrono::steady_clock::time_point> deadline;
};

namespace detail {

/**
 * Shared failure constructors for cancellation and deadline expiry:
 * the transient drivers and both sweep engines (TransientBatch,
 * engine::Session::runSweep) must report byte-identical failures for
 * the same event, so all of them build the failure here.
 */
TransientFailure cancelledFailure(double t, std::size_t step);
TransientFailure deadlineFailure(double t, std::size_t step);

} // namespace detail

/**
 * Transient result: times plus all unknowns per sample in one flat
 * reserve-backed buffer (sample-major), mirroring sim::Trajectory —
 * recording a sample is a bulk append with no per-sample allocation,
 * and state(s) is a view into the buffer.
 */
class TransientResult
{
  public:
    /** Pre-sizes the buffers for `samples` samples of `dim` unknowns. */
    void reserve(std::size_t samples, std::size_t dim);

    /** Appends one sample; all samples must share the first's dim. */
    void addSample(double t, const double *state, std::size_t dim);

    std::size_t size() const { return times_.size(); }
    /** Unknown-vector length; 0 until the first sample lands. */
    std::size_t dim() const { return dim_; }

    const std::vector<double> &times() const { return times_; }
    double time(std::size_t sample) const { return times_.at(sample); }

    /** One recorded state vector (a view into the flat buffer). */
    std::span<const double> state(std::size_t sample) const;

    /** Compatibility accessor: series of one unknown over all samples. */
    std::vector<double> series(std::size_t unknown) const;

    /**
     * Set when the run stopped early (nonfinite state; the batch
     * engine also reports bad inputs and singular matrices here
     * instead of throwing). Samples recorded before the failure are
     * kept.
     */
    std::optional<TransientFailure> failure;

    /** True when the run integrated all the way to t1. */
    bool ok() const { return !failure.has_value(); }

  private:
    std::size_t dim_ = 0;
    std::vector<double> times_;
    std::vector<double> states_; ///< Flat, size() * dim_.
};

/**
 * Reusable sparse transient operator bound to one (structure, dt):
 * the companion matrices and their factorization. This is the unit
 * TransientBatch shares across a same-structure sweep — construct
 * once from the group leader, then per instance either run() directly
 * (bit-identical matrix values) or copy + rebind() (numeric-only
 * refactorization replaying the leader's pivot order).
 */
class TransientStepper
{
  public:
    /**
     * Builds and factors the companion matrices.
     * @throws support::SimError for dt <= 0; ArkError (Sim) when the
     *         companion matrix is singular.
     */
    TransientStepper(const SparseMnaSystem &system, double dt);

    double dt() const { return dt_; }

    /**
     * Pre-factors the companion operator for a fractional final step
     * of size `h` (a [t0, t1] range dt does not divide ends on one
     * short step; see finalStepSize). Prepared once on a group
     * leader, the factors are shared by every value-identical
     * instance and refactored numerically by rebind() for the rest —
     * without this, each instance one-off-factors the final step and
     * bypasses the batch engine's factor sharing. `h == dt()` (or
     * <= 0) clears the prepared operator instead; a singular final
     * companion also leaves it unset, so run() falls back to the
     * per-run one-off path (which reports the singularity as that
     * instance's structured mid-run failure). `system` must be the
     * one the main factors are bound to. Not thread-safe against
     * concurrent run() calls — prepare before sharing.
     */
    void prepareFinalStep(const SparseMnaSystem &system, double h);

    /** Step size the prepared final-step operator was built for, or
     *  0 when none is prepared. */
    double preparedFinalStep() const { return finalH_; }

    /**
     * Rebinds the factors to `system`'s matrix values (which must
     * share the bound structure): numeric refactorization only — the
     * prepared final-step operator, when present, is refactored
     * alongside the main companion. Falls back to a fresh pivot
     * search when the reused pivot order collapses on the new values.
     * @throws ArkError (Sim) when the instance matrix is singular; on
     *         throw the stepper holds no valid factors — discard it
     *         or rebind successfully before calling run().
     */
    void rebind(const SparseMnaSystem &system);

    /**
     * Integrates `system` (whose companion matrices must match the
     * currently bound values) from x0 (zeros when empty) over
     * [t0, t1], sampling every step. Thread-safe: run() is const and
     * touches no shared mutable state, so one stepper may serve
     * concurrent value-identical instances. `control` adds
     * cooperative cancellation/deadline checks at step granularity
     * (see TransientControl); the defaults never fire.
     * @throws support::SimError for invalid t0/t1/x0.
     */
    TransientResult run(const SparseMnaSystem &system, double t0,
                        double t1, const std::vector<double> &x0 = {},
                        const TransientControl &control = {}) const;

  private:
    double dt_;
    support::SparseMatrix a_;
    support::SparseMatrix b_;
    support::SparseLu lu_;
    /** Consistent-initialization operator (identity on dynamic rows,
     *  K elsewhere); factored once here and rebound with the
     *  companion factors. Absent when every row is dynamic. */
    support::SparseMatrix initA_;
    std::optional<support::SparseLu> initLu_;
    /** Optional pre-factored fractional-final-step operator
     *  (prepareFinalStep); absent means run() one-off-factors any
     *  short final step it encounters. */
    double finalH_ = 0.0;
    support::SparseMatrix finalA_;
    support::SparseMatrix finalB_;
    std::optional<support::SparseLu> finalLu_;
};

/**
 * Trapezoidal transient analysis from x(0) = x0 (zeros when empty).
 * Samples every step.
 * @throws support::SimError for dt <= 0, t1 < t0, or wrong-sized x0;
 *         ArkError (Sim) when the companion matrix is singular at
 *         setup. Mid-run events — a nonfinite state, or a singular
 *         short-final-step companion — return early with a
 *         structured TransientResult::failure instead, keeping the
 *         samples recorded before the event.
 */
TransientResult transient(const MnaSystem &system, double t0, double t1,
                          double dt, const std::vector<double> &x0 = {},
                          const TransientControl &control = {});

/** Sparse-path transient; same contract and (to rounding) results. */
TransientResult transient(const SparseMnaSystem &system, double t0,
                          double t1, double dt,
                          const std::vector<double> &x0 = {},
                          const TransientControl &control = {});

/**
 * Size of the last step a trapezoidal transient over [t0, t1] with
 * nominal step dt takes — dt when the grid divides the range (or the
 * range is empty), the fractional remainder otherwise. Computed with
 * the integrator's own time-accumulation loop so the result is
 * bit-identical to the `h` the stepper sees on its final iteration
 * (a closed-form remainder would round differently). Used by
 * TransientBatch to pre-factor a group leader's final-step operator.
 */
double finalStepSize(double t0, double t1, double dt);

/** Convenience: assemble + simulate + return one node's voltage. */
std::vector<double> transientNodeVoltage(const Netlist &netlist,
                                         int node, double t0, double t1,
                                         double dt);

} // namespace ark::spice

#endif // ARK_SPICE_MNA_H
