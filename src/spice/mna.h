#ifndef ARK_SPICE_MNA_H
#define ARK_SPICE_MNA_H

/**
 * @file
 * Modified nodal analysis and trapezoidal transient simulation.
 *
 * Unknowns are the node voltages plus one branch current per inductor
 * and per voltage source. The assembled system is
 * M dx/dt + K x = u(t); transient analysis integrates it with the
 * trapezoidal rule (what SPICE uses for such circuits), factoring
 * (2M/h + K) once per run. Rows with no dynamic term (voltage-source
 * constraints) are enforced exactly at each step.
 */

#include <vector>

#include "spice/netlist.h"
#include "support/linalg.h"

namespace ark::spice {

/** Assembled MNA system. */
class MnaSystem
{
  public:
    /** @throws SemaError for malformed circuits. */
    explicit MnaSystem(const Netlist &netlist);

    /** Total unknowns (nodes + dynamic branches). */
    std::size_t size() const { return size_; }

    std::size_t numNodeUnknowns() const { return numNodes_; }

    const support::Matrix &massMatrix() const { return m_; }
    const support::Matrix &stiffnessMatrix() const { return k_; }

    /** Source vector u(t). */
    std::vector<double> sourceVector(double t) const;

    /** True when row r has any dynamic (M) entry. */
    bool rowIsDynamic(std::size_t r) const { return dynamicRow_[r]; }

  private:
    std::size_t numNodes_;
    std::size_t size_;
    support::Matrix m_;
    support::Matrix k_;
    std::vector<bool> dynamicRow_;
    /** (row, sign, waveform/value) triples for u(t). */
    struct SourceEntry
    {
        std::size_t row;
        double sign;
        double dc;
        Waveform waveform;
    };
    std::vector<SourceEntry> sources_;
};

/** Transient result: times plus node voltages per sample. */
struct TransientResult
{
    std::vector<double> times;
    /** states[s][i]: unknown i at sample s. */
    std::vector<std::vector<double>> states;

    /** Series of one unknown (e.g.\ a node voltage). */
    std::vector<double> series(std::size_t unknown) const;
};

/**
 * Trapezoidal transient analysis from x(0) = x0 (zeros when empty).
 * Samples every step.
 * @throws SimError when the companion matrix is singular.
 */
TransientResult transient(const MnaSystem &system, double t0, double t1,
                          double dt,
                          const std::vector<double> &x0 = {});

/** Convenience: assemble + simulate + return one node's voltage. */
std::vector<double> transientNodeVoltage(const Netlist &netlist,
                                         int node, double t0, double t1,
                                         double dt);

} // namespace ark::spice

#endif // ARK_SPICE_MNA_H
