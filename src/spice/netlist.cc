#include "spice/netlist.h"

#include <sstream>

#include "support/error.h"
#include "support/logging.h"
#include "support/strings.h"

namespace ark::spice {

using support::cat;
using support::SemaError;

const char *
elemKindName(ElemKind kind)
{
    switch (kind) {
      case ElemKind::Resistor: return "R";
      case ElemKind::Capacitor: return "C";
      case ElemKind::Inductor: return "L";
      case ElemKind::Vccs: return "G";
      case ElemKind::CurrentSource: return "I";
      case ElemKind::VoltageSource: return "V";
    }
    return "?";
}

int
Netlist::addNode(const std::string &name)
{
    for (const auto &existing : nodeNames_) {
        if (existing == name)
            throw SemaError(cat("duplicate circuit node '", name, "'"));
    }
    nodeNames_.push_back(name);
    return static_cast<int>(nodeNames_.size()) - 1;
}

int
Netlist::node(const std::string &name) const
{
    for (std::size_t i = 0; i < nodeNames_.size(); ++i)
        if (nodeNames_[i] == name)
            return static_cast<int>(i);
    throw SemaError(cat("unknown circuit node '", name, "'"));
}

void
Netlist::checkNode(int node, const std::string &what) const
{
    if (node != kGround && (node < 0 || node >= numNodes()))
        throw SemaError(cat("element '", what, "' references bad node ",
                            node));
}

void
Netlist::resistor(const std::string &name, int pos, int neg, double ohms)
{
    checkNode(pos, name);
    checkNode(neg, name);
    if (ohms <= 0.0)
        throw SemaError(cat("resistor '", name, "' needs R > 0"));
    elements_.push_back(
        Element{ElemKind::Resistor, name, pos, neg, ohms, kGround,
                kGround, nullptr});
}

void
Netlist::capacitor(const std::string &name, int pos, int neg, double farads)
{
    checkNode(pos, name);
    checkNode(neg, name);
    if (farads <= 0.0)
        throw SemaError(cat("capacitor '", name, "' needs C > 0"));
    elements_.push_back(
        Element{ElemKind::Capacitor, name, pos, neg, farads, kGround,
                kGround, nullptr});
}

void
Netlist::inductor(const std::string &name, int pos, int neg, double henries)
{
    checkNode(pos, name);
    checkNode(neg, name);
    if (henries <= 0.0)
        throw SemaError(cat("inductor '", name, "' needs L > 0"));
    elements_.push_back(
        Element{ElemKind::Inductor, name, pos, neg, henries, kGround,
                kGround, nullptr});
}

void
Netlist::vccs(const std::string &name, int pos, int neg, int ctrlPos,
              int ctrlNeg, double gm)
{
    checkNode(pos, name);
    checkNode(neg, name);
    checkNode(ctrlPos, name);
    checkNode(ctrlNeg, name);
    elements_.push_back(Element{ElemKind::Vccs, name, pos, neg, gm,
                                ctrlPos, ctrlNeg, nullptr});
}

void
Netlist::currentSource(const std::string &name, int pos, int neg,
                       double amps, Waveform waveform)
{
    checkNode(pos, name);
    checkNode(neg, name);
    elements_.push_back(Element{ElemKind::CurrentSource, name, pos, neg,
                                amps, kGround, kGround,
                                std::move(waveform)});
}

void
Netlist::voltageSource(const std::string &name, int pos, int neg,
                       double volts, Waveform waveform)
{
    checkNode(pos, name);
    checkNode(neg, name);
    elements_.push_back(Element{ElemKind::VoltageSource, name, pos, neg,
                                volts, kGround, kGround,
                                std::move(waveform)});
}

std::string
Netlist::spiceText() const
{
    std::ostringstream oss;
    auto nodeStr = [&](int node) -> std::string {
        return node == kGround ? "0" : cat("n", node);
    };
    for (const Element &elem : elements_) {
        oss << elemKindName(elem.kind) << elem.name << " "
            << nodeStr(elem.pos) << " " << nodeStr(elem.neg);
        if (elem.kind == ElemKind::Vccs) {
            oss << " " << nodeStr(elem.ctrlPos) << " "
                << nodeStr(elem.ctrlNeg);
        }
        if (elem.waveform) {
            oss << " BEHAVIORAL";
        } else {
            oss << " " << support::formatDouble(elem.value);
        }
        oss << "\n";
    }
    return oss.str();
}

} // namespace ark::spice
