#include "spice/map_tln.h"

#include "expr/eval.h"
#include "expr/fold.h"
#include "expr/tape.h"
#include "support/error.h"
#include "support/logging.h"

namespace ark::spice {

using support::cat;
using support::SemaError;

namespace {

/** Classification of a TLN-family node. */
enum class TlnKind { V, I, InpV, InpI };

TlnKind
classify(const dg::TypeTable &types, const std::string &type)
{
    if (types.isNodeAncestor("V", type))
        return TlnKind::V;
    if (types.isNodeAncestor("I", type))
        return TlnKind::I;
    if (types.isNodeAncestor("InpV", type))
        return TlnKind::InpV;
    if (types.isNodeAncestor("InpI", type))
        return TlnKind::InpI;
    throw SemaError(cat("node type '", type,
                        "' is not part of the TLN family"));
}

bool
isState(TlnKind kind)
{
    return kind == TlnKind::V || kind == TlnKind::I;
}

/** Compiles a lambda attribute into a time waveform. */
Waveform
waveformOf(const expr::Value &fnValue)
{
    const expr::Lambda &fn = fnValue.asFunction();
    if (fn.params.size() != 1)
        throw SemaError("TLN input functions take one argument (time)");
    expr::ExprPtr body = expr::applyLambda(fn, {expr::Expr::time()});
    expr::Tape tape = expr::Tape::compile(expr::fold(body));
    return [tape](double t) {
        std::vector<double> regs;
        return tape.eval(nullptr, t, regs);
    };
}

/** Edge weights: Em carries sampled ws/wt, E is the ideal 1/1. */
std::pair<double, double>
edgeWeights(const dg::Graph &graph, dg::EdgeId id)
{
    const dg::EdgeTypeDef &type = graph.edgeTypeOf(id);
    if (type.findAttr("ws")) {
        return {graph.edgeAttr(id, "ws").asReal(),
                graph.edgeAttr(id, "wt").asReal()};
    }
    return {1.0, 1.0};
}

} // namespace

MappedTln
mapTlnToSpice(const dg::Graph &graph, const lang::Language &lang)
{
    if (!lang.isDescendantOf("tln")) {
        throw SemaError(cat("language '", lang.name(),
                            "' does not descend from tln"));
    }
    const dg::TypeTable &types = graph.types();

    MappedTln out;
    // Circuit nodes for V/I state nodes; capacitors from c/l.
    for (std::size_t i = 0; i < graph.numNodes(); ++i) {
        dg::NodeId id{static_cast<std::int32_t>(i)};
        const dg::Node &node = graph.node(id);
        TlnKind kind = classify(types, node.type);
        if (!isState(kind))
            continue;
        int circuitNode = out.netlist.addNode(node.name);
        out.circuitNodeOf.emplace(node.name, circuitNode);
        double cap = kind == TlnKind::V
                         ? graph.nodeAttr(id, "c").asReal()
                         : graph.nodeAttr(id, "l").asReal();
        out.netlist.capacitor(cat("C_", node.name), circuitNode, kGround,
                              cap);
    }

    // Edges: losses, couplings, and sources.
    for (std::size_t i = 0; i < graph.numEdges(); ++i) {
        dg::EdgeId id{static_cast<std::int32_t>(i)};
        const dg::Edge &edge = graph.edge(id);
        if (!edge.enabled)
            continue;
        const dg::Node &src = graph.node(edge.src);
        const dg::Node &dst = graph.node(edge.dst);
        TlnKind srcKind = classify(types, src.type);

        if (edge.isSelf()) {
            // Loss self edge: conductance g (V) or r (I) to ground.
            if (!isState(srcKind))
                throw SemaError(cat("self edge '", edge.name,
                                    "' on a non-state node"));
            double loss = srcKind == TlnKind::V
                              ? graph.nodeAttr(edge.src, "g").asReal()
                              : graph.nodeAttr(edge.src, "r").asReal();
            if (loss > 0.0) {
                out.netlist.resistor(cat("R_", src.name),
                                     out.circuitNodeOf.at(src.name),
                                     kGround, 1.0 / loss);
            }
            continue;
        }

        TlnKind dstKind = classify(types, dst.type);
        if (!isState(dstKind)) {
            throw SemaError(cat("edge '", edge.name,
                                "' drives a non-state node"));
        }
        int dstNode = out.circuitNodeOf.at(dst.name);
        auto [ws, wt] = edgeWeights(graph, id);

        if (isState(srcKind)) {
            int srcNode = out.circuitNodeOf.at(src.name);
            // dst gains +wt * v_src: VCCS from ground into dst.
            out.netlist.vccs(cat("Gt_", edge.name), kGround, dstNode,
                             srcNode, kGround, wt);
            // src loses ws * v_dst: VCCS out of src.
            out.netlist.vccs(cat("Gs_", edge.name), srcNode, kGround,
                             dstNode, kGround, ws);
            continue;
        }

        // Input sources (Norton for InpI, Thevenin-as-Norton for InpV).
        Waveform fn = waveformOf(graph.nodeAttr(edge.src, "fn"));
        double scale; // multiplies both the source and the conductance
        double conductance;
        if (srcKind == TlnKind::InpI) {
            double g = graph.nodeAttr(edge.src, "g").asReal();
            if (dstKind == TlnKind::V) {
                // t <= wt*(-g*v + fn)/c
                scale = wt;
                conductance = wt * g;
            } else {
                // t <= wt*(-v + fn)/(g*l)
                if (g <= 0.0) {
                    throw SemaError(cat("InpI '", src.name,
                                        "' feeding an I node needs g>0"));
                }
                scale = wt / g;
                conductance = wt / g;
            }
        } else { // InpV
            double r = graph.nodeAttr(edge.src, "r").asReal();
            if (dstKind == TlnKind::V) {
                // t <= wt*(-v + fn)/(r*c)
                if (r <= 0.0) {
                    throw SemaError(cat("InpV '", src.name,
                                        "' feeding a V node needs r>0"));
                }
                scale = wt / r;
                conductance = wt / r;
            } else {
                // t <= wt*(-r*v + fn)/l
                scale = wt;
                conductance = wt * r;
            }
        }
        if (conductance > 0.0) {
            out.netlist.resistor(cat("Rin_", edge.name), dstNode,
                                 kGround, 1.0 / conductance);
        }
        double amp = scale;
        out.netlist.currentSource(
            cat("Iin_", edge.name), kGround, dstNode, 0.0,
            [fn, amp](double t) { return amp * fn(t); });
    }
    return out;
}

} // namespace ark::spice
