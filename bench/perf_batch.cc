/**
 * @file
 * Lane-parallel batch engine benchmarks on the paper's headline
 * ensemble workload: a 32-section TLN PUF challenge battery of
 * mismatched chips.
 *
 * BM_PufBatteryRhsLanes sweeps the lane width (1 = scalar fused
 * baseline) over pure RHS evaluation — the instances/sec counter is
 * the acceptance metric for dispatch amortization + SIMD. The
 * BM_PufBatteryEnsembleRk4 pair measures the end-to-end fixed-step
 * battery through BatchRunner with lane batching on vs off
 * (single-thread, so the ratio isolates the lane win from pool
 * parallelism). The BM_EnsembleDopri5{Scalar,Lanes} pair does the
 * same for the adaptive default: the scalar per-instance Dopri5 path
 * vs the lane-synchronized step-voting driver on one voted grid.
 * BM_PufBatteryRhsJit and BM_EnsembleDopri5Jit are the tier-5 twins:
 * the same RHS blocks served by runtime-compiled native kernels, and
 * the same adaptive battery with SimOptions::jit on — each reads
 * against its interpreted counterpart above.
 * BM_MaxcutRhsFma measures the FusedMulAdd tape ISA on a
 * sum-of-products Kuramoto RHS, FMA off vs on, scalar and 8-lane —
 * on baseline ISAs std::fma routes through libm soft-fma (expected
 * slower; the opcode pays off under ARK_ENABLE_NATIVE on FMA hosts),
 * which is exactly why the contraction is opt-in and this benchmark
 * records both sides.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "apps/puf.h"
#include "compiler/compiler.h"
#include "engine/jit.h"
#include "expr/cjit.h"
#include "expr/lanetape.h"
#include "paradigms/obc.h"
#include "paradigms/standard.h"
#include "sim/sim.h"
#include "support/rng.h"
#include "validator/validator.h"

namespace {

using namespace ark;

constexpr int kChips = 8;

apps::PufDesign
batteryDesign()
{
    apps::PufDesign design;
    design.mainSections = 32;
    design.numBranches = 4;
    design.stubSections = 4;
    return design;
}

/** Compiles the 8-chip battery once per process. */
const std::vector<compiler::OdeSystem> &
batterySystems()
{
    static const std::vector<compiler::OdeSystem> systems = [] {
        lang::LanguageRegistry registry =
            paradigms::makeStandardRegistry();
        const lang::Language &gmcTln = registry.language("gmc-tln");
        apps::TlnPuf puf(gmcTln, batteryDesign());
        std::vector<compiler::OdeSystem> compiled;
        for (std::uint64_t seed = 1; seed <= kChips; ++seed) {
            dg::Graph graph = puf.buildGraph(0xB, seed);
            validator::validateOrThrow(graph, gmcTln);
            compiled.push_back(compiler::compile(graph, gmcTln));
        }
        return compiled;
    }();
    return systems;
}

/**
 * RHS throughput at a given lane width: the battery's 8 instances
 * evaluated as blocks of `width` lanes (width 1 runs the scalar fused
 * tape). items/sec == instance-RHS-evaluations/sec.
 */
void
BM_PufBatteryRhsLanes(benchmark::State &state)
{
    const auto width = static_cast<std::size_t>(state.range(0));
    const std::vector<compiler::OdeSystem> &systems = batterySystems();
    const std::size_t n = systems.front().size();

    support::Rng rng(99);
    if (width == 1) {
        std::vector<std::vector<double>> states(kChips);
        for (auto &chipState : states)
            for (std::size_t i = 0; i < n; ++i)
                chipState.push_back(rng.uniform(-1.0, 1.0));
        std::vector<double> dstate(n);
        std::vector<double> scratch = systems.front().makeScratch();
        for (auto _ : state) {
            for (std::size_t c = 0; c < kChips; ++c) {
                systems[c].evalRhs(states[c].data(), 1e-8,
                                   dstate.data(), scratch);
                benchmark::DoNotOptimize(dstate.data());
            }
        }
    } else {
        std::vector<expr::LaneTape> blocks;
        std::vector<std::vector<double>> soaStates;
        for (std::size_t base = 0; base < kChips; base += width) {
            std::vector<const expr::FusedTape *> tapes;
            for (std::size_t l = 0; l < width; ++l)
                tapes.push_back(&systems[base + l].fusedTape());
            std::optional<expr::LaneTape> lane =
                expr::LaneTape::merge(tapes);
            if (!lane) {
                state.SkipWithError("PUF chips failed to lane-merge");
                return;
            }
            std::vector<double> soa(n * lane->width());
            for (double &v : soa)
                v = rng.uniform(-1.0, 1.0);
            blocks.push_back(*std::move(lane));
            soaStates.push_back(std::move(soa));
        }
        std::vector<double> out(n * width);
        std::vector<double> regs(blocks.front().scratchSize());
        for (auto _ : state) {
            for (std::size_t b = 0; b < blocks.size(); ++b) {
                blocks[b].evalInto(soaStates[b].data(), 1e-8,
                                   out.data(), regs.data());
                benchmark::DoNotOptimize(out.data());
            }
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kChips);
}
BENCHMARK(BM_PufBatteryRhsLanes)->Arg(1)->Arg(4)->Arg(8);

/**
 * End-to-end fixed-step battery: 8 chips over the full observation
 * window, single-thread. items/sec == instances integrated per
 * second; lane:1 vs lane:0 is the acceptance-criterion ratio.
 */
void
BM_PufBatteryEnsembleRk4(benchmark::State &state)
{
    const bool lanes = state.range(0) != 0;
    const std::vector<compiler::OdeSystem> &systems = batterySystems();
    std::vector<const compiler::OdeSystem *> pointers;
    for (const compiler::OdeSystem &system : systems)
        pointers.push_back(&system);

    const apps::PufDesign design = batteryDesign();
    sim::EnsembleOptions options;
    options.sim.method = sim::Method::Rk4;
    options.sim.dt = design.windowEnd / 4000.0;
    options.sim.recordDt = design.windowEnd / 4000.0;
    options.numThreads = 1;
    options.laneBatching = lanes;
    for (auto _ : state) {
        std::vector<sim::SimResult> results = sim::simulateEnsemble(
            pointers, 0.0, design.windowEnd, options);
        benchmark::DoNotOptimize(results.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kChips);
}
BENCHMARK(BM_PufBatteryEnsembleRk4)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * Adaptive battery, scalar per-instance Dopri5 (laneBatching off):
 * the pre-voting baseline every chip used to take. Default
 * tolerances, single-thread; items/sec == instances integrated per
 * second.
 */
void
BM_EnsembleDopri5Scalar(benchmark::State &state)
{
    const std::vector<compiler::OdeSystem> &systems = batterySystems();
    std::vector<const compiler::OdeSystem *> pointers;
    for (const compiler::OdeSystem &system : systems)
        pointers.push_back(&system);
    const apps::PufDesign design = batteryDesign();
    sim::EnsembleOptions options; // Dopri5 default tolerances
    options.numThreads = 1;
    options.laneBatching = false;
    for (auto _ : state) {
        std::vector<sim::SimResult> results = sim::simulateEnsemble(
            pointers, 0.0, design.windowEnd, options);
        benchmark::DoNotOptimize(results.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kChips);
}
BENCHMARK(BM_EnsembleDopri5Scalar)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * Adaptive battery through the lane-synchronized step-voting driver:
 * all 8 chips advance on one voted step in an 8-lane block. The
 * ratio to BM_EnsembleDopri5Scalar is the adaptive-batch acceptance
 * metric (single-thread, so it isolates the lane win).
 */
void
BM_EnsembleDopri5Lanes(benchmark::State &state)
{
    const std::vector<compiler::OdeSystem> &systems = batterySystems();
    std::vector<const compiler::OdeSystem *> pointers;
    for (const compiler::OdeSystem &system : systems)
        pointers.push_back(&system);
    const apps::PufDesign design = batteryDesign();
    sim::EnsembleOptions options; // Dopri5 default tolerances
    options.numThreads = 1;
    options.laneBatching = true;
    for (auto _ : state) {
        std::vector<sim::SimResult> results = sim::simulateEnsemble(
            pointers, 0.0, design.windowEnd, options);
        benchmark::DoNotOptimize(results.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kChips);
}
BENCHMARK(BM_EnsembleDopri5Lanes)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * RHS throughput through tier-5 native kernels: the same battery and
 * block shapes as BM_PufBatteryRhsLanes, with each block's program
 * compiled to a native kernel and evaluated through its function
 * pointer. The ratio to the same-width interpreted run is the JIT
 * acceptance metric (the issue targets >= 2x over interpreted W=8).
 * Skipped (with an error) on hosts without a C toolchain.
 */
void
BM_PufBatteryRhsJit(benchmark::State &state)
{
    const auto width = static_cast<std::size_t>(state.range(0));
    const std::vector<compiler::OdeSystem> &systems = batterySystems();
    const std::size_t n = systems.front().size();

    support::Rng rng(99);
    std::vector<expr::LaneTape> blocks;
    std::vector<expr::JitKernelPtr> kernels;
    std::vector<std::vector<double>> soaStates;
    for (std::size_t base = 0; base < kChips; base += width) {
        std::optional<expr::LaneTape> lane;
        if (width == 1) {
            lane = expr::LaneTape::broadcast(systems[base].fusedTape(),
                                             1);
        } else {
            std::vector<const expr::FusedTape *> tapes;
            for (std::size_t l = 0; l < width; ++l)
                tapes.push_back(&systems[base + l].fusedTape());
            lane = expr::LaneTape::merge(tapes);
            if (!lane) {
                state.SkipWithError("PUF chips failed to lane-merge");
                return;
            }
        }
        expr::JitKernelPtr kernel = engine::jitKernel(*lane);
        if (kernel == nullptr) {
            state.SkipWithError("no host C toolchain for the JIT");
            return;
        }
        std::vector<double> soa(n * lane->width());
        for (double &v : soa)
            v = rng.uniform(-1.0, 1.0);
        blocks.push_back(*std::move(lane));
        kernels.push_back(std::move(kernel));
        soaStates.push_back(std::move(soa));
    }
    std::vector<double> out(n * width);
    for (auto _ : state) {
        for (std::size_t b = 0; b < blocks.size(); ++b) {
            kernels[b]->call(soaStates[b].data(), 1e-8, out.data(),
                             blocks[b].constants().data());
            benchmark::DoNotOptimize(out.data());
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kChips);
}
BENCHMARK(BM_PufBatteryRhsJit)->Arg(1)->Arg(8);

/**
 * Adaptive battery with tier-5 kernels serving the step-voting
 * driver's RHS (SimOptions::jit on, lane batching on). Compare with
 * BM_EnsembleDopri5Lanes for the kernel win and with
 * BM_EnsembleDopri5Scalar for the full tier-3 -> tier-5 climb; falls
 * back to the interpreted driver (and measures it) without a
 * toolchain.
 */
void
BM_EnsembleDopri5Jit(benchmark::State &state)
{
    const std::vector<compiler::OdeSystem> &systems = batterySystems();
    std::vector<const compiler::OdeSystem *> pointers;
    for (const compiler::OdeSystem &system : systems)
        pointers.push_back(&system);
    const apps::PufDesign design = batteryDesign();
    sim::EnsembleOptions options; // Dopri5 default tolerances
    options.numThreads = 1;
    options.laneBatching = true;
    options.sim.jit = true;
    for (auto _ : state) {
        std::vector<sim::SimResult> results = sim::simulateEnsemble(
            pointers, 0.0, design.windowEnd, options);
        benchmark::DoNotOptimize(results.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kChips);
}
BENCHMARK(BM_EnsembleDopri5Jit)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/** Compiles one dense Kuramoto max-cut system (sum-of-products RHS). */
const compiler::OdeSystem &
maxcutSystem()
{
    static const compiler::OdeSystem system = [] {
        lang::LanguageRegistry registry =
            paradigms::makeStandardRegistry();
        paradigms::obc::MaxcutInstance instance;
        instance.numVertices = 12;
        for (int a = 0; a < instance.numVertices; ++a)
            for (int b = a + 1; b < instance.numVertices; ++b)
                instance.edges.emplace_back(a, b);
        paradigms::obc::MaxcutSpec spec;
        for (int v = 0; v < instance.numVertices; ++v)
            spec.initPhases.push_back(0.37 * v);
        const lang::Language &obc = registry.language("obc");
        return compiler::compile(
            paradigms::obc::buildMaxcut(obc, instance, spec), obc);
    }();
    return system;
}

/**
 * FMA-on/off RHS microbench on a Kuramoto sum-of-products program:
 * range(0) selects the tape (0 plain, 1 FMA-contracted), range(1)
 * the lane width (1 scalar, 8 lane-batched). items/sec ==
 * instance-RHS-evaluations per second.
 */
void
BM_MaxcutRhsFma(benchmark::State &state)
{
    const bool fma = state.range(0) != 0;
    const auto width = static_cast<std::size_t>(state.range(1));
    const compiler::OdeSystem &system = maxcutSystem();
    const expr::FusedTape &tape = system.rhsTape(fma);
    const std::size_t n = system.size();

    support::Rng rng(31);
    if (width == 1) {
        std::vector<double> input(n), out(n);
        for (double &v : input)
            v = rng.uniform(-2.0, 2.0);
        std::vector<double> regs(
            static_cast<std::size_t>(tape.numRegs()));
        for (auto _ : state) {
            tape.evalInto(input.data(), 1e-9, out.data(), regs.data());
            benchmark::DoNotOptimize(out.data());
        }
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations()));
    } else {
        expr::LaneTape lanes = expr::LaneTape::broadcast(tape, width);
        std::vector<double> input(n * width), out(n * width);
        for (double &v : input)
            v = rng.uniform(-2.0, 2.0);
        std::vector<double> regs(lanes.scratchSize());
        for (auto _ : state) {
            lanes.evalInto(input.data(), 1e-9, out.data(), regs.data());
            benchmark::DoNotOptimize(out.data());
        }
        state.SetItemsProcessed(
            static_cast<std::int64_t>(state.iterations() * width));
    }
}
BENCHMARK(BM_MaxcutRhsFma)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 8})
    ->Args({1, 8});

} // namespace
