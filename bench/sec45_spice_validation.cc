/**
 * @file
 * §4.5 empirical validation: 1000 randomly generated valid GmC-TLN
 * dynamical graphs are mapped to SPICE netlists; the netlist's MNA
 * transient must match the Ark-compiled ODE dynamics within 1% RMSE.
 *
 * Paper: (1) all valid DGs map to a netlist; (2) RMSE < 1%.
 */

#include <iostream>

#include "apps/experiments.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "spice/map_tln.h"
#include "support/table.h"
#include "validator/validator.h"

int
main()
{
    using namespace ark;
    namespace exp = apps::experiments;

    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &gmc = registry.language("gmc-tln");

    const int trials = 1000;
    std::cout << "== Sec 4.5: DG vs SPICE cross-validation ("
              << trials << " random GmC-TLN graphs) ==\n\n";

    exp::SpiceValidation report =
        exp::runSpiceValidation(gmc, trials);

    support::Table table({"metric", "value"});
    table.addRow({"graphs generated", std::to_string(report.total)});
    table.addRow({"mapped to netlist", std::to_string(report.mapped)});
    table.addRow({"RMSE < 1%", std::to_string(report.under1pct)});
    table.addRow({"mean relative RMSE",
                  std::to_string(report.meanRmse)});
    table.addRow({"max relative RMSE", std::to_string(report.maxRmse)});
    table.print(std::cout);

    // Show one generated netlist as evidence of the mapping.
    paradigms::tln::LineSpec spec;
    spec.sections = 2;
    spec.mismatchC = true;
    spec.mismatchGm = true;
    spec.seed = 42;
    dg::Graph graph = paradigms::tln::buildLine(gmc, spec);
    validator::validateOrThrow(graph, gmc);
    spice::MappedTln mapped = spice::mapTlnToSpice(graph, gmc);
    std::cout << "\n-- example netlist (2-section mismatched line) --\n"
              << mapped.netlist.spiceText();
    return 0;
}
