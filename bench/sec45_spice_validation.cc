/**
 * @file
 * §4.5 empirical validation: 1000 randomly generated valid GmC-TLN
 * dynamical graphs are mapped to SPICE netlists; the netlist's
 * transient must match the Ark-compiled ODE dynamics within 1% RMSE.
 *
 * Paper: (1) all valid DGs map to a netlist; (2) RMSE < 1%.
 *
 * Both sides run batched — the compiled systems as one ODE ensemble,
 * the netlists through the sparse shared-structure TransientBatch —
 * so the sweep doubles as a scaling benchmark: the wall-clock for the
 * sparse batch vs the serial dense path is printed alongside the
 * statistics (which match between the two paths to rounding).
 */

#include <chrono>
#include <iostream>

#include "apps/experiments.h"
#include "engine/cache.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "spice/map_tln.h"
#include "support/table.h"
#include "validator/validator.h"

int
main()
{
    using namespace ark;
    namespace exp = apps::experiments;
    using Clock = std::chrono::steady_clock;

    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &gmc = registry.language("gmc-tln");

    const int trials = 1000;
    std::cout << "== Sec 4.5: DG vs SPICE cross-validation ("
              << trials << " random GmC-TLN graphs) ==\n\n";

    exp::SpiceValidationOptions sparseOptions;
    sparseOptions.sparse = true;
    Clock::time_point start = Clock::now();
    exp::SpiceValidation report =
        exp::runSpiceValidation(gmc, trials, 1, sparseOptions);
    double sparseSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();

    support::Table table({"metric", "value"});
    table.addRow({"graphs generated", std::to_string(report.total)});
    table.addRow({"mapped to netlist", std::to_string(report.mapped)});
    table.addRow({"RMSE < 1%", std::to_string(report.under1pct)});
    table.addRow({"mean relative RMSE",
                  std::to_string(report.meanRmse)});
    table.addRow({"max relative RMSE", std::to_string(report.maxRmse)});
    table.addRow({"distinct netlist structures",
                  std::to_string(report.spiceGroups)});
    table.print(std::cout);

    // Scaling check on a slice: the whole pipeline (generation + Ark
    // ensemble + SPICE side) with the SPICE half on the batched
    // sparse path vs the serial-equivalent dense path. The DG side
    // dominates this end-to-end time; bench_perf_spice isolates the
    // SPICE engine itself (BM_SpiceSweepDense vs
    // BM_SpiceSweepSparseBatch, >= 3x netlists/s).
    const int sliceTrials = 100;
    exp::SpiceValidationOptions denseOptions;
    denseOptions.sparse = false;
    denseOptions.numThreads = 1;
    exp::SpiceValidationOptions sparseSlice;
    sparseSlice.sparse = true;
    sparseSlice.numThreads = 1;
    // The full sweep above used the same seeds, so the shared
    // artifact cache is warm for exactly these trials; clear it
    // before each timed slice so the comparison measures the sparse
    // batch engine, not cache hits.
    engine::ArtifactCache::shared().clear();
    start = Clock::now();
    exp::SpiceValidation denseReport =
        exp::runSpiceValidation(gmc, sliceTrials, 1, denseOptions);
    double denseSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    engine::ArtifactCache::shared().clear();
    start = Clock::now();
    exp::SpiceValidation sparseReport =
        exp::runSpiceValidation(gmc, sliceTrials, 1, sparseSlice);
    double sparseSliceSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();

    std::cout << "\n-- end-to-end pipeline, SPICE half sparse-batched "
                 "vs serial dense ("
              << sliceTrials << "-trial slice, 1 thread) --\n"
              << "dense:  " << denseSeconds << " s (mean RMSE "
              << denseReport.meanRmse << ")\n"
              << "sparse: " << sparseSliceSeconds << " s (mean RMSE "
              << sparseReport.meanRmse << ")\n"
              << "full sparse sweep: " << sparseSeconds << " s\n";

    // Repeated-sweep check: re-validating the same slice (same seeds
    // -> same graph and netlist contents) must be served warm by the
    // engine's content-addressed artifact cache — compiled systems
    // skip ILP validation + lowering, and every companion
    // factorization is a cache hit instead of a symbolic/numeric
    // factorization. Statistics are bit-identical to the cold sweep.
    engine::ArtifactCache::shared().clear();
    start = Clock::now();
    exp::SpiceValidation coldSlice =
        exp::runSpiceValidation(gmc, sliceTrials, 1, sparseSlice);
    double coldSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    start = Clock::now();
    exp::SpiceValidation warmSlice =
        exp::runSpiceValidation(gmc, sliceTrials, 1, sparseSlice);
    double warmSeconds =
        std::chrono::duration<double>(Clock::now() - start).count();

    std::cout << "\n-- repeated sweep through the artifact cache ("
              << sliceTrials << " trials, 1 thread) --\n"
              << "cold: " << coldSeconds << " s, factor hits "
              << coldSlice.spiceFactorHits << " / misses "
              << coldSlice.spiceFactorMisses << "\n"
              << "warm: " << warmSeconds << " s, factor hits "
              << warmSlice.spiceFactorHits << " / misses "
              << warmSlice.spiceFactorMisses << "\n"
              << "statistics identical: "
              << (coldSlice.meanRmse == warmSlice.meanRmse &&
                          coldSlice.maxRmse == warmSlice.maxRmse &&
                          coldSlice.under1pct == warmSlice.under1pct
                      ? "yes"
                      : "NO")
              << " (warm hit rate "
              << (warmSlice.spiceFactorHits + warmSlice.spiceFactorMisses
                      ? 100.0 * warmSlice.spiceFactorHits /
                            (warmSlice.spiceFactorHits +
                             warmSlice.spiceFactorMisses)
                      : 0.0)
              << "%)\n";

    // Show one generated netlist as evidence of the mapping.
    paradigms::tln::LineSpec spec;
    spec.sections = 2;
    spec.mismatchC = true;
    spec.mismatchGm = true;
    spec.seed = 42;
    dg::Graph graph = paradigms::tln::buildLine(gmc, spec);
    validator::validateOrThrow(graph, gmc);
    spice::MappedTln mapped = spice::mapTlnToSpice(graph, gmc);
    std::cout << "\n-- example netlist (2-section mismatched line) --\n"
              << mapped.netlist.spiceText();
    return 0;
}
