/**
 * @file
 * Microbenchmarks: Ark frontend and dynamical-system compiler
 * throughput (parse+sema of the paradigm DSLs; DG -> ODE compilation
 * across line sizes).
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "compiler/compiler.h"
#include "engine/session.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "support/rng.h"

namespace {

using namespace ark;

void
BM_ParseAndBuildAllLanguages(benchmark::State &state)
{
    for (auto _ : state) {
        lang::LanguageRegistry registry =
            paradigms::makeStandardRegistry();
        benchmark::DoNotOptimize(registry.findLanguage("intercon-obc"));
    }
}
BENCHMARK(BM_ParseAndBuildAllLanguages);

void
BM_BuildLineGraph(benchmark::State &state)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &tln = registry.language("tln");
    paradigms::tln::LineSpec spec;
    spec.sections = static_cast<int>(state.range(0));
    for (auto _ : state) {
        dg::Graph graph = paradigms::tln::buildLine(tln, spec);
        benchmark::DoNotOptimize(graph.numNodes());
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildLineGraph)->Range(4, 256)->Complexity();

void
BM_CompileLine(benchmark::State &state)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &tln = registry.language("tln");
    paradigms::tln::LineSpec spec;
    spec.sections = static_cast<int>(state.range(0));
    dg::Graph graph = paradigms::tln::buildLine(tln, spec);
    for (auto _ : state) {
        compiler::OdeSystem system = compiler::compile(graph, tln);
        benchmark::DoNotOptimize(system.size());
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompileLine)->Range(4, 256)->Complexity();

/** A single 32-section ideal TLN (the paper's Figure 4 size). */
std::vector<dg::Graph>
tln32Graphs(const lang::Language &tln)
{
    paradigms::tln::LineSpec spec;
    spec.sections = 32;
    std::vector<dg::Graph> graphs;
    graphs.push_back(paradigms::tln::buildLine(tln, spec));
    return graphs;
}

/**
 * The §4.5 SPICE-validation sweep population: 218 random GmC-TLN
 * structures, drawn exactly like apps/experiments.cc
 * runSpiceValidation (per-trial RNG, 3-12 sections, mismatch on, 50%
 * branched) minus the netlist mapping.
 */
std::vector<dg::Graph>
sweep218Graphs(const lang::Language &gmcTln)
{
    constexpr int kTrials = 218;
    constexpr std::uint64_t kSeedBase = 1234;
    std::vector<dg::Graph> graphs;
    graphs.reserve(kTrials);
    for (int trial = 0; trial < kTrials; ++trial) {
        support::Rng rng(kSeedBase + static_cast<std::uint64_t>(trial));
        paradigms::tln::LineSpec spec;
        spec.sections = static_cast<int>(rng.uniformInt(3, 12));
        spec.inductance = rng.uniform(0.5e-9, 2e-9);
        spec.capacitance = rng.uniform(0.5e-9, 2e-9);
        spec.sourceConductance = rng.uniform(0.5, 2.0);
        spec.termConductance = rng.uniform(0.5, 2.0);
        spec.pulseWidth = rng.uniform(0.5e-8, 2e-8);
        spec.mismatchC = true;
        spec.mismatchGm = true;
        spec.seed = rng.deriveSeed();
        if (rng.bernoulli(0.5)) {
            paradigms::tln::BranchSpec branch;
            branch.line = spec;
            branch.stubSections = static_cast<int>(rng.uniformInt(1, 4));
            branch.attachAt = static_cast<int>(
                rng.uniformInt(1, spec.sections - 1));
            graphs.push_back(
                paradigms::tln::buildBranched(gmcTln, branch));
        } else {
            graphs.push_back(paradigms::tln::buildLine(gmcTln, spec));
        }
    }
    return graphs;
}

using GraphSetBuilder =
    std::vector<dg::Graph> (*)(const lang::Language &);

/**
 * Cold compile: every iteration lowers the whole population through
 * uncached compiler::compile (graph validation excluded — graphs are
 * prebuilt; validation is benchmarked by perf_validator). This is the
 * ISSUE acceptance metric for the hash-consing/single-pass-instantiate
 * work: time per iteration = cold compile of the full sweep.
 */
void
BM_CompileCold(benchmark::State &state, const char *langName,
               GraphSetBuilder build)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &lang = registry.language(langName);
    std::vector<dg::Graph> graphs = build(lang);
    std::size_t stateVars = 0;
    for (auto _ : state) {
        stateVars = 0;
        for (const dg::Graph &graph : graphs) {
            compiler::OdeSystem system = compiler::compile(graph, lang);
            stateVars += system.size();
        }
        benchmark::DoNotOptimize(stateVars);
    }
    state.counters["structures"] =
        static_cast<double>(graphs.size());
    state.counters["state_vars"] = static_cast<double>(stateVars);
}
BENCHMARK_CAPTURE(BM_CompileCold, tln32, "tln", tln32Graphs)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CompileCold, sweep218, "gmc-tln", sweep218Graphs)
    ->Unit(benchmark::kMillisecond);

/**
 * Warm compile: the same population through an engine::Session whose
 * artifact cache was primed by one pass — per-iteration cost is
 * fingerprint + cache hit per structure (the repeated-sweep path of
 * §4.5).
 */
void
BM_CompileWarm(benchmark::State &state, const char *langName,
               GraphSetBuilder build)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &lang = registry.language(langName);
    std::vector<dg::Graph> graphs = build(lang);
    engine::Session session;
    for (const dg::Graph &graph : graphs)
        benchmark::DoNotOptimize(session.compile(graph, lang));
    for (auto _ : state) {
        std::size_t stateVars = 0;
        for (const dg::Graph &graph : graphs)
            stateVars += session.compile(graph, lang)->size();
        benchmark::DoNotOptimize(stateVars);
    }
    state.counters["structures"] =
        static_cast<double>(graphs.size());
}
BENCHMARK_CAPTURE(BM_CompileWarm, tln32, "tln", tln32Graphs)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CompileWarm, sweep218, "gmc-tln", sweep218Graphs)
    ->Unit(benchmark::kMillisecond);

void
BM_InvokeBrFunc(benchmark::State &state)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    for (auto _ : state) {
        dg::Graph graph =
            registry.invoke("br-func", {expr::Value::integer(1)});
        benchmark::DoNotOptimize(graph.numEdges());
    }
}
BENCHMARK(BM_InvokeBrFunc);

} // namespace
