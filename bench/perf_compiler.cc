/**
 * @file
 * Microbenchmarks: Ark frontend and dynamical-system compiler
 * throughput (parse+sema of the paradigm DSLs; DG -> ODE compilation
 * across line sizes).
 */

#include <benchmark/benchmark.h>

#include "compiler/compiler.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"

namespace {

using namespace ark;

void
BM_ParseAndBuildAllLanguages(benchmark::State &state)
{
    for (auto _ : state) {
        lang::LanguageRegistry registry =
            paradigms::makeStandardRegistry();
        benchmark::DoNotOptimize(registry.findLanguage("intercon-obc"));
    }
}
BENCHMARK(BM_ParseAndBuildAllLanguages);

void
BM_BuildLineGraph(benchmark::State &state)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &tln = registry.language("tln");
    paradigms::tln::LineSpec spec;
    spec.sections = static_cast<int>(state.range(0));
    for (auto _ : state) {
        dg::Graph graph = paradigms::tln::buildLine(tln, spec);
        benchmark::DoNotOptimize(graph.numNodes());
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BuildLineGraph)->Range(4, 256)->Complexity();

void
BM_CompileLine(benchmark::State &state)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &tln = registry.language("tln");
    paradigms::tln::LineSpec spec;
    spec.sections = static_cast<int>(state.range(0));
    dg::Graph graph = paradigms::tln::buildLine(tln, spec);
    for (auto _ : state) {
        compiler::OdeSystem system = compiler::compile(graph, tln);
        benchmark::DoNotOptimize(system.size());
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompileLine)->Range(4, 256)->Complexity();

void
BM_InvokeBrFunc(benchmark::State &state)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    for (auto _ : state) {
        dg::Graph graph =
            registry.invoke("br-func", {expr::Value::integer(1)});
        benchmark::DoNotOptimize(graph.numEdges());
    }
}
BENCHMARK(BM_InvokeBrFunc);

} // namespace
