/**
 * @file
 * §2 case study extension: quality metrics for the transmission-line
 * PUF built on the gmc-tln design space.
 *
 * The paper motivates TLN PUFs but reports only trajectories; this
 * harness completes the case study with the standard PUF figures of
 * merit: uniqueness (inter-chip Hamming distance, ideal 50%),
 * reliability (intra-chip distance under re-measurement noise, ideal
 * 0%), and challenge sensitivity.
 */

#include <iostream>

#include "apps/puf.h"
#include "paradigms/standard.h"
#include "support/table.h"

int
main()
{
    using namespace ark;

    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &gmc = registry.language("gmc-tln");

    std::cout << "== TLN PUF quality analysis (gmc-tln design space) "
                 "==\n\n";

    apps::PufDesign design;
    design.mainSections = 16;
    design.numBranches = 4;
    design.stubSections = 4;
    apps::TlnPuf puf(gmc, design);

    const int chips = 8;
    const int challenges = 6;
    const double noise = 0.002; // 2mV measurement noise
    apps::PufMetrics metrics =
        apps::evaluatePuf(puf, chips, challenges, noise, 99);

    support::Table table({"metric", "value", "ideal"});
    table.addRow({"uniqueness (inter-chip HD)",
                  std::to_string(metrics.uniqueness), "0.5"});
    table.addRow({"reliability (intra-chip HD)",
                  std::to_string(metrics.reliability), "0.0"});
    table.addRow({"challenge sensitivity",
                  std::to_string(metrics.challengeSensitivity), "0.5"});
    table.print(std::cout);

    std::cout << "\nconfig: " << chips << " chips x " << challenges
              << " challenges, " << design.responseBits
              << "-bit responses, Gm mismatch 10%, noise sigma "
              << noise << "V\n";
    return 0;
}
