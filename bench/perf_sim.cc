/**
 * @file
 * Ablation: fixed-step RK4 versus adaptive DOPRI5 on the paper's
 * workloads (TLN pulse propagation; Kuramoto max-cut relaxation),
 * the SPICE MNA engine on the mapped equivalent, and the thread-pooled
 * ensemble driver versus a serial restart loop.
 */

#include <benchmark/benchmark.h>

#include "apps/experiments.h"
#include "compiler/compiler.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "sim/sim.h"
#include "spice/map_tln.h"
#include "spice/mna.h"
#include "support/rng.h"

namespace {

using namespace ark;

void
BM_SimTlnRk4(benchmark::State &state)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &tln = registry.language("tln");
    paradigms::tln::LineSpec spec;
    spec.sections = 10;
    compiler::OdeSystem system =
        compiler::compile(paradigms::tln::buildLine(tln, spec), tln);
    sim::SimOptions options;
    options.method = sim::Method::Rk4;
    options.dt = 2e-11;
    options.recordDt = 1e-9;
    for (auto _ : state) {
        sim::SimResult result =
            sim::simulate(system, 0.0, 8e-8, options);
        benchmark::DoNotOptimize(result.steps);
    }
}
BENCHMARK(BM_SimTlnRk4);

void
BM_SimTlnDopri5(benchmark::State &state)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &tln = registry.language("tln");
    paradigms::tln::LineSpec spec;
    spec.sections = 10;
    compiler::OdeSystem system =
        compiler::compile(paradigms::tln::buildLine(tln, spec), tln);
    sim::SimOptions options;
    options.method = sim::Method::Dopri5;
    options.recordDt = 1e-9;
    for (auto _ : state) {
        sim::SimResult result =
            sim::simulate(system, 0.0, 8e-8, options);
        benchmark::DoNotOptimize(result.steps);
    }
}
BENCHMARK(BM_SimTlnDopri5);

void
BM_SimMaxcutDopri5(benchmark::State &state)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &obc = registry.language("obc");
    paradigms::obc::MaxcutInstance instance;
    instance.numVertices = 4;
    instance.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
    paradigms::obc::MaxcutSpec spec;
    spec.initPhases = {0.3, 2.0, 4.1, 5.5};
    compiler::OdeSystem system = compiler::compile(
        paradigms::obc::buildMaxcut(obc, instance, spec), obc);
    sim::SimOptions options;
    options.recordDt = 1e-9;
    for (auto _ : state) {
        sim::SimResult result =
            sim::simulate(system, 0.0, 5e-8, options);
        benchmark::DoNotOptimize(result.steps);
    }
}
BENCHMARK(BM_SimMaxcutDopri5);

/** 8 Kuramoto max-cut restarts with random initial phases. */
std::pair<compiler::OdeSystem, std::vector<std::vector<double>>>
maxcutRestartBattery()
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &obc = registry.language("obc");
    paradigms::obc::MaxcutInstance instance;
    instance.numVertices = 4;
    instance.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
    paradigms::obc::MaxcutSpec spec;
    spec.initPhases = {0.3, 2.0, 4.1, 5.5};
    compiler::OdeSystem system = compiler::compile(
        paradigms::obc::buildMaxcut(obc, instance, spec), obc);
    support::Rng rng(7);
    std::vector<std::vector<double>> initials;
    for (int restart = 0; restart < 8; ++restart) {
        std::vector<double> phases;
        for (std::size_t v = 0; v < system.size(); ++v)
            phases.push_back(rng.uniform(0.0, 6.28));
        initials.push_back(std::move(phases));
    }
    return {std::move(system), std::move(initials)};
}

void
BM_SimEnsembleSerial(benchmark::State &state)
{
    auto [system, initials] = maxcutRestartBattery();
    sim::SimOptions options;
    options.recordDt = 1e-9;
    for (auto _ : state) {
        std::size_t steps = 0;
        for (const auto &initial : initials) {
            sim::SimResult result =
                sim::simulate(system, initial, 0.0, 5e-8, options);
            steps += result.steps;
        }
        benchmark::DoNotOptimize(steps);
    }
}
BENCHMARK(BM_SimEnsembleSerial)->Unit(benchmark::kMillisecond);

void
BM_SimEnsembleThreaded(benchmark::State &state)
{
    auto [system, initials] = maxcutRestartBattery();
    sim::EnsembleOptions options;
    options.sim.recordDt = 1e-9;
    options.numThreads = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        std::vector<sim::SimResult> results = sim::simulateEnsemble(
            system, initials, 0.0, 5e-8, options);
        benchmark::DoNotOptimize(results.size());
    }
}
BENCHMARK(BM_SimEnsembleThreaded)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_SpiceMnaTransient(benchmark::State &state)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &tln = registry.language("tln");
    paradigms::tln::LineSpec spec;
    spec.sections = 10;
    dg::Graph graph = paradigms::tln::buildLine(tln, spec);
    spice::MappedTln mapped = spice::mapTlnToSpice(graph, tln);
    spice::MnaSystem system(mapped.netlist);
    for (auto _ : state) {
        spice::TransientResult result =
            spice::transient(system, 0.0, 8e-8, 2e-11);
        benchmark::DoNotOptimize(result.size());
    }
}
BENCHMARK(BM_SpiceMnaTransient);

} // namespace
