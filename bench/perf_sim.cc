/**
 * @file
 * Ablation: fixed-step RK4 versus adaptive DOPRI5 on the paper's
 * workloads (TLN pulse propagation; Kuramoto max-cut relaxation),
 * and the SPICE MNA engine on the mapped equivalent.
 */

#include <benchmark/benchmark.h>

#include "apps/experiments.h"
#include "compiler/compiler.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "sim/sim.h"
#include "spice/map_tln.h"
#include "spice/mna.h"

namespace {

using namespace ark;

void
BM_SimTlnRk4(benchmark::State &state)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &tln = registry.language("tln");
    paradigms::tln::LineSpec spec;
    spec.sections = 10;
    compiler::OdeSystem system =
        compiler::compile(paradigms::tln::buildLine(tln, spec), tln);
    sim::SimOptions options;
    options.method = sim::Method::Rk4;
    options.dt = 2e-11;
    options.recordDt = 1e-9;
    for (auto _ : state) {
        sim::SimResult result =
            sim::simulate(system, 0.0, 8e-8, options);
        benchmark::DoNotOptimize(result.steps);
    }
}
BENCHMARK(BM_SimTlnRk4);

void
BM_SimTlnDopri5(benchmark::State &state)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &tln = registry.language("tln");
    paradigms::tln::LineSpec spec;
    spec.sections = 10;
    compiler::OdeSystem system =
        compiler::compile(paradigms::tln::buildLine(tln, spec), tln);
    sim::SimOptions options;
    options.method = sim::Method::Dopri5;
    options.recordDt = 1e-9;
    for (auto _ : state) {
        sim::SimResult result =
            sim::simulate(system, 0.0, 8e-8, options);
        benchmark::DoNotOptimize(result.steps);
    }
}
BENCHMARK(BM_SimTlnDopri5);

void
BM_SimMaxcutDopri5(benchmark::State &state)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &obc = registry.language("obc");
    paradigms::obc::MaxcutInstance instance;
    instance.numVertices = 4;
    instance.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
    paradigms::obc::MaxcutSpec spec;
    spec.initPhases = {0.3, 2.0, 4.1, 5.5};
    compiler::OdeSystem system = compiler::compile(
        paradigms::obc::buildMaxcut(obc, instance, spec), obc);
    sim::SimOptions options;
    options.recordDt = 1e-9;
    for (auto _ : state) {
        sim::SimResult result =
            sim::simulate(system, 0.0, 5e-8, options);
        benchmark::DoNotOptimize(result.steps);
    }
}
BENCHMARK(BM_SimMaxcutDopri5);

void
BM_SpiceMnaTransient(benchmark::State &state)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &tln = registry.language("tln");
    paradigms::tln::LineSpec spec;
    spec.sections = 10;
    dg::Graph graph = paradigms::tln::buildLine(tln, spec);
    spice::MappedTln mapped = spice::mapTlnToSpice(graph, tln);
    spice::MnaSystem system(mapped.netlist);
    for (auto _ : state) {
        spice::TransientResult result =
            spice::transient(system, 0.0, 8e-8, 2e-11);
        benchmark::DoNotOptimize(result.times.size());
    }
}
BENCHMARK(BM_SpiceMnaTransient);

} // namespace
