/**
 * @file
 * Ablation: compiled evaluation tapes versus the tree-walking
 * interpreter on real ODE right-hand sides (the Kuramoto coupling
 * expression and a full TLN system RHS), and the fused whole-system
 * tape versus the per-variable tape loop.
 */

#include <benchmark/benchmark.h>

#include "compiler/compiler.h"
#include "expr/eval.h"
#include "expr/fold.h"
#include "expr/fusedtape.h"
#include "expr/tape.h"
#include "lang/parser.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"

namespace {

using namespace ark;

expr::ExprPtr
kuramotoTerm()
{
    using expr::Expr;
    // -1.6e9 * k * sin(q0 - q1) - 1e9 * sin(2 q0), resolved form.
    auto q0 = Expr::stateVar(0);
    auto q1 = Expr::stateVar(1);
    auto coupling = Expr::binary(
        expr::BinOp::Mul, Expr::real(-1.6e9),
        Expr::call("sin",
                   {Expr::binary(expr::BinOp::Sub, q0, q1)}));
    auto shil = Expr::binary(
        expr::BinOp::Mul, Expr::real(-1e9),
        Expr::call("sin", {Expr::binary(expr::BinOp::Mul,
                                        Expr::real(2.0), q0)}));
    return expr::fold(
        Expr::binary(expr::BinOp::Add, coupling, shil));
}

void
BM_ExprInterpreted(benchmark::State &state)
{
    expr::ExprPtr term = kuramotoTerm();
    std::vector<double> stateVec{0.3, 1.7};
    expr::EvalContext ctx;
    ctx.lookupState = [&](int i) {
        return stateVec[static_cast<std::size_t>(i)];
    };
    for (auto _ : state) {
        double v = expr::evalReal(term, ctx);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_ExprInterpreted);

void
BM_ExprTape(benchmark::State &state)
{
    expr::Tape tape = expr::Tape::compile(kuramotoTerm());
    std::vector<double> stateVec{0.3, 1.7};
    std::vector<double> regs;
    for (auto _ : state) {
        double v = tape.eval(stateVec.data(), 0.0, regs);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_ExprTape);

void
BM_SystemRhsInterpreted(benchmark::State &state)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &tln = registry.language("tln");
    paradigms::tln::LineSpec spec;
    spec.sections = 32;
    compiler::OdeSystem system =
        compiler::compile(paradigms::tln::buildLine(tln, spec), tln);
    std::vector<double> x = system.initialState();
    std::vector<double> dx(system.size());
    for (auto _ : state) {
        system.evalRhsInterpreted(x.data(), 1e-9, dx.data());
        benchmark::DoNotOptimize(dx[0]);
    }
}
BENCHMARK(BM_SystemRhsInterpreted);

/** The paper's 32-section TLN system (the ISSUE-1 reference target). */
compiler::OdeSystem
tln32System()
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &tln = registry.language("tln");
    paradigms::tln::LineSpec spec;
    spec.sections = 32;
    return compiler::compile(paradigms::tln::buildLine(tln, spec), tln);
}

void
BM_SystemRhsTape(benchmark::State &state)
{
    compiler::OdeSystem system = tln32System();
    std::vector<double> x = system.initialState();
    std::vector<double> dx(system.size());
    std::vector<double> scratch = system.makeScratch();
    for (auto _ : state) {
        system.evalRhsPerTape(x.data(), 1e-9, dx.data(), scratch);
        benchmark::DoNotOptimize(dx[0]);
    }
}
BENCHMARK(BM_SystemRhsTape);

void
BM_SystemRhsFused(benchmark::State &state)
{
    compiler::OdeSystem system = tln32System();
    std::vector<double> x = system.initialState();
    std::vector<double> dx(system.size());
    std::vector<double> scratch = system.makeScratch();
    for (auto _ : state) {
        system.evalRhs(x.data(), 1e-9, dx.data(), scratch);
        benchmark::DoNotOptimize(dx[0]);
    }
    state.counters["instructions"] = static_cast<double>(
        system.fusedTape().size());
    state.counters["registers"] = static_cast<double>(
        system.fusedTape().numRegs());
}
BENCHMARK(BM_SystemRhsFused);

} // namespace
