/**
 * @file
 * Figure 2: dynamical graphs of branched, linear, and malformed
 * t-lines. Regenerates the validator verdicts the paper reports (the
 * malformed V-V line is rejected) and prints the compiled equations
 * of a small line to show the DG -> ODE lowering.
 */

#include <iostream>

#include "compiler/compiler.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "support/table.h"
#include "validator/validator.h"

int
main()
{
    using namespace ark;
    namespace ptln = paradigms::tln;

    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &tln = registry.language("tln");

    std::cout << "== Figure 2: t-line dynamical graphs ==\n\n";

    ptln::LineSpec lineSpec;
    lineSpec.sections = 10;
    dg::Graph linear = ptln::buildLine(tln, lineSpec);

    ptln::BranchSpec branchSpec;
    branchSpec.line.sections = 10;
    branchSpec.stubSections = 8;
    branchSpec.attachAt = 5;
    dg::Graph branched = ptln::buildBranched(tln, branchSpec);

    dg::Graph malformed = ptln::buildMalformed(tln);

    support::Table table({"graph", "nodes", "edges", "validates",
                          "detail"});
    auto report = [&](const char *name, const dg::Graph &graph) {
        validator::ValidationResult result =
            validator::validate(graph, tln);
        table.addRow({name, std::to_string(graph.numNodes()),
                      std::to_string(graph.numEdges()),
                      result.ok ? "yes" : "NO",
                      result.ok ? "" : result.problems.front()});
    };
    report("linear t-line (Fig 2-ii)", linear);
    report("branched t-line (Fig 2-i)", branched);
    report("malformed t-line (Fig 2-iii)", malformed);
    table.print(std::cout);

    std::cout << "\n-- compiled equations of a 2-section line --\n";
    ptln::LineSpec tiny;
    tiny.sections = 2;
    dg::Graph tinyLine = ptln::buildLine(tln, tiny);
    compiler::OdeSystem system = compiler::compile(tinyLine, tln);
    std::cout << system.equationsStr();
    return 0;
}
