/**
 * @file
 * §7.2 routing trade-offs: the intercon-obc language enforces, at
 * compile (validation) time, that cross-group couplings use global
 * (expensive) edges, and exposes per-edge resource costs.
 *
 * Regenerates the paper's qualitative result: a legal grouped
 * topology validates; replacing one cross-group edge with a local
 * edge is rejected; and interconnect cost quantifies the
 * programmability/efficiency trade-off between all-to-all and
 * group-local topologies.
 */

#include <iostream>

#include "paradigms/obc.h"
#include "paradigms/standard.h"
#include "support/table.h"
#include "validator/validator.h"

int
main()
{
    using namespace ark;
    namespace pobc = paradigms::obc;

    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &intercon = registry.language("intercon-obc");

    std::cout << "== Sec 7.2: intercon-obc interconnect modeling ==\n\n";

    // An 8-vertex ring: grouped placement puts 0-3 in G0, 4-7 in G1,
    // leaving exactly two cross-group couplings.
    pobc::MaxcutInstance ring;
    ring.numVertices = 8;
    for (int v = 0; v < 8; ++v)
        ring.edges.emplace_back(v, (v + 1) % 8);

    pobc::GroupedSpec grouped;
    grouped.groups = {0, 0, 0, 0, 1, 1, 1, 1};
    dg::Graph goodRing = pobc::buildGrouped(intercon, ring, grouped);

    // The same ring with an adversarial placement: alternating
    // groups force every coupling through global edges.
    pobc::GroupedSpec alternating;
    alternating.groups = {0, 1, 0, 1, 0, 1, 0, 1};
    dg::Graph badPlacement =
        pobc::buildGrouped(intercon, ring, alternating);

    // Illegal: a local edge crossing groups must fail validation.
    dg::Graph illegal = pobc::buildGroupedIllegal(intercon);

    support::Table table({"topology", "validates", "interconnect cost"});
    auto report = [&](const char *name, const dg::Graph &graph) {
        validator::ValidationResult result =
            validator::validate(graph, intercon);
        table.addRow({name, result.ok ? "yes" : "NO",
                      std::to_string(pobc::interconnectCost(graph))});
    };
    report("ring, grouped 4+4 (2 global links)", goodRing);
    report("ring, alternating placement (8 global)", badPlacement);
    report("cross-group local edge (illegal)", illegal);
    table.print(std::cout);

    std::cout << "\ncost model: local Cpl_l = 1, global Cpl_g = 10 "
                 "(paper: all-to-all chips spend most area on routing; "
                 "neighbour-coupled chips fit ~18x more oscillators)\n";
    return 0;
}
