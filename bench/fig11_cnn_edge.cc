/**
 * @file
 * Figure 11: CNN edge detection under hardware nonidealities.
 *
 * Four columns, as in the paper:
 *   A: ideal cnn;
 *   B: 10% integrator mismatch (Vm substitution);
 *   C: 10% template-weight mismatch (fEm substitution);
 *   D: non-ideal saturation (OutNL substitution).
 * Rows are the evolution at t = 0, 0.25, 0.5, 0.75, 1.0. Output
 * frames render as ASCII; the summary reports output errors against
 * the ground-truth edge map and convergence times.
 */

#include <iostream>

#include "apps/experiments.h"
#include "paradigms/standard.h"
#include "support/table.h"

int
main()
{
    using namespace ark;
    namespace exp = apps::experiments;
    namespace pcnn = paradigms::cnn;

    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &cnn = registry.language("cnn");
    const lang::Language &hwCnn = registry.language("hw-cnn");

    apps::Image input = apps::Image::hollowSquare(16, 3, 3);
    std::vector<double> frames = {0.0, 0.25, 0.5, 0.75, 1.0, 2.0, 4.0};

    struct Column
    {
        const char *label;
        const lang::Language *language;
        pcnn::CnnSpec spec;
    };
    pcnn::CnnSpec base;
    base.width = 16;
    base.height = 16;

    Column columns[4] = {
        {"A: ideal", &cnn, base},
        {"B: z/integrator mm", &hwCnn, base},
        {"C: g template mm", &hwCnn, base},
        {"D: non-ideal sat", &hwCnn, base},
    };
    columns[1].spec.mismatchZ = true;
    columns[1].spec.seed = 7;
    columns[2].spec.mismatchG = true;
    columns[2].spec.seed = 7;
    columns[3].spec.nonIdealSat = true;

    std::cout << "== Figure 11: CNN edge detector ==\n\n";
    std::cout << "input image:\n" << input.ascii() << "\n";
    std::cout << "expected edge map:\n" << input.edgeMap().ascii()
              << "\n";

    support::Table summary({"column", "output errors", "converged",
                            "converge time"});
    std::vector<exp::CnnRun> runs;
    for (const Column &column : columns) {
        exp::CnnRun run = exp::runCnnEdgeDetect(
            *column.language, column.spec, input, frames);
        summary.addRow({column.label, std::to_string(run.outputErrors),
                        run.converged ? "yes" : "no",
                        run.converged ? std::to_string(run.convergeTime)
                                      : "-"});
        runs.push_back(std::move(run));
    }
    summary.print(std::cout);

    // Evolution frames at the paper's five times (ASCII).
    for (std::size_t column = 0; column < runs.size(); ++column) {
        std::cout << "\n-- column " << columns[column].label << " --\n";
        for (std::size_t f = 0; f < 5; ++f) {
            std::cout << "t=" << runs[column].frameTimes[f] << "\n"
                      << runs[column].frames[f].binarized().ascii();
        }
    }
    return 0;
}
