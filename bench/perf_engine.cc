/**
 * @file
 * Content-addressed engine benchmarks on the paper's §7 CRP-dataset
 * workload: a 64-challenge x 8-chip PUF battery over a 4-bit
 * challenge space (so the 64 draws revisit each of the 16 distinct
 * challenges about four times — the repeated-evaluation shape the
 * engine exists for).
 *
 * BM_PufCrpMatrixCold is the historical compile-per-challenge loop:
 * a fresh TlnPuf with caching disabled calls responseBatch once per
 * challenge, so every challenge rebuilds, ILP-revalidates, and
 * recompiles all nine systems (8 chips + the nominal device) and
 * re-simulates every chip even when the challenge repeats.
 * BM_PufCrpMatrixWarm runs the same battery through the cached
 * responseMatrix front door: distinct (challenge, chip) systems
 * compile once per process, repeated challenges replicate the
 * simulated waveform, and the whole battery integrates as one
 * ensemble dispatch. items/sec == chip responses produced per second;
 * the warm/cold ratio is the acceptance metric (>= 2x).
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "apps/puf.h"
#include "engine/cache.h"
#include "engine/session.h"
#include "lang/registry.h"
#include "paradigms/standard.h"
#include "support/rng.h"

namespace {

using namespace ark;

constexpr int kChips = 8;
constexpr int kChallenges = 64;

const lang::Language &
gmcTln()
{
    static const lang::LanguageRegistry *registry =
        new lang::LanguageRegistry(paradigms::makeStandardRegistry());
    return registry->language("gmc-tln");
}

apps::PufDesign
crpDesign()
{
    apps::PufDesign design;
    design.mainSections = 8;
    design.numBranches = 4; // 16 distinct challenges
    design.stubSections = 2;
    design.responseBits = 32;
    return design;
}

/** 64 challenge draws over the 16-challenge space (fixed seed). */
const std::vector<std::uint32_t> &
crpChallenges()
{
    static const std::vector<std::uint32_t> challenges = [] {
        support::Rng rng(2024);
        std::vector<std::uint32_t> draws;
        draws.reserve(kChallenges);
        for (int i = 0; i < kChallenges; ++i)
            draws.push_back(
                static_cast<std::uint32_t>(rng.uniformInt(0, 15)));
        return draws;
    }();
    return challenges;
}

std::vector<std::uint64_t>
crpChips()
{
    std::vector<std::uint64_t> chips;
    for (std::uint64_t seed = 1; seed <= kChips; ++seed)
        chips.push_back(seed);
    return chips;
}

/**
 * Compile-per-challenge baseline: every iteration is a cold CRP
 * sweep — fresh TlnPuf (empty nominal cache), caching disabled, one
 * responseBatch call per challenge draw. Single-thread so the ratio
 * isolates artifact reuse from pool parallelism.
 */
void
BM_PufCrpMatrixCold(benchmark::State &state)
{
    const std::vector<std::uint32_t> &challenges = crpChallenges();
    const std::vector<std::uint64_t> chips = crpChips();
    for (auto _ : state) {
        apps::TlnPuf puf(gmcTln(), crpDesign(),
                         engine::Session(
                             engine::SessionOptions{.caching = false}));
        for (std::uint32_t challenge : challenges) {
            auto responses = puf.responseBatch(challenge, chips, 0.0,
                                               {}, 1);
            benchmark::DoNotOptimize(responses.size());
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * kChallenges * kChips));
}
BENCHMARK(BM_PufCrpMatrixCold)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * Cached responseMatrix battery on a persistent TlnPuf: compiled
 * systems stay warm in a dedicated ArtifactCache across iterations
 * and repeated challenges share one simulated waveform per chip.
 */
void
BM_PufCrpMatrixWarm(benchmark::State &state)
{
    static engine::ArtifactCache *cache = new engine::ArtifactCache();
    static const apps::TlnPuf *puf = new apps::TlnPuf(
        gmcTln(), crpDesign(),
        engine::Session(
            engine::SessionOptions{.caching = true, .cache = cache}));
    const std::vector<std::uint32_t> &challenges = crpChallenges();
    const std::vector<std::uint64_t> chips = crpChips();

    // One untimed pass fills the cache (and the nominal waveforms),
    // so the loop below measures the steady warm state a CRP-dataset
    // generator lives in.
    auto warmup = puf->responseMatrix(challenges, chips, 0.0, {}, 1);
    benchmark::DoNotOptimize(warmup.size());

    for (auto _ : state) {
        auto responses = puf->responseMatrix(challenges, chips, 0.0,
                                             {}, 1);
        benchmark::DoNotOptimize(responses.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * kChallenges * kChips));
}
BENCHMARK(BM_PufCrpMatrixWarm)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace
