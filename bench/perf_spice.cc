/**
 * @file
 * Batched SPICE transient benchmarks on the §4.5-style validation
 * workload: a sweep of mismatch-sampled 32-section GmC-TLN netlists
 * that share one topology.
 *
 * BM_SpiceSweepDense is the historical baseline — serial dense MNA
 * per netlist, each paying a fresh O(n^3) factorization and O(n^2)
 * back-substitutions. BM_SpiceSweepSparseBatch runs the same sweep
 * through spice::TransientBatch at one thread, so the netlists/s
 * ratio isolates the sparse shared-structure win (CSR stamps, one
 * symbolic analysis for the whole sweep, numeric refactorization per
 * instance) from pool parallelism. The acceptance criterion is >= 3x
 * netlists/s on this sweep on the single-core container.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "spice/batch.h"
#include "spice/map_tln.h"
#include "spice/mna.h"
#include "validator/validator.h"

namespace {

using namespace ark;

constexpr int kNetlists = 8;
constexpr double kEnd = 1e-8;
constexpr double kDt = 2e-11;

/** Mismatch-sampled 32-section sweep, mapped once per process. */
const std::vector<spice::MappedTln> &
sweepNetlists()
{
    static const std::vector<spice::MappedTln> mapped = [] {
        lang::LanguageRegistry registry =
            paradigms::makeStandardRegistry();
        const lang::Language &gmc = registry.language("gmc-tln");
        std::vector<spice::MappedTln> out;
        for (std::uint64_t seed = 1; seed <= kNetlists; ++seed) {
            paradigms::tln::LineSpec spec;
            spec.sections = 32;
            spec.mismatchC = true;
            spec.mismatchGm = true;
            spec.seed = seed;
            dg::Graph graph = paradigms::tln::buildLine(gmc, spec);
            validator::validateOrThrow(graph, gmc);
            out.push_back(spice::mapTlnToSpice(graph, gmc));
        }
        return out;
    }();
    return mapped;
}

void
BM_SpiceSweepDense(benchmark::State &state)
{
    const std::vector<spice::MappedTln> &mapped = sweepNetlists();
    for (auto _ : state) {
        for (const spice::MappedTln &map : mapped) {
            spice::MnaSystem system(map.netlist);
            spice::TransientResult result =
                spice::transient(system, 0.0, kEnd, kDt);
            benchmark::DoNotOptimize(result.size());
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kNetlists);
}
BENCHMARK(BM_SpiceSweepDense)->Unit(benchmark::kMillisecond);

void
BM_SpiceSweepSparseBatch(benchmark::State &state)
{
    const std::vector<spice::MappedTln> &mapped = sweepNetlists();
    std::vector<const spice::Netlist *> netlists;
    for (const spice::MappedTln &map : mapped)
        netlists.push_back(&map.netlist);
    spice::TransientBatchOptions options;
    options.numThreads = 1; // isolate the sparse win from the pool
    spice::TransientBatch batch(options);
    for (auto _ : state) {
        std::vector<spice::TransientResult> results =
            batch.run(netlists, 0.0, kEnd, kDt);
        benchmark::DoNotOptimize(results.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * kNetlists);
}
BENCHMARK(BM_SpiceSweepSparseBatch)->Unit(benchmark::kMillisecond);

} // namespace
