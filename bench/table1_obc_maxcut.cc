/**
 * @file
 * Table 1: probability of successful synchronization and of solving
 * max-cut with the ideal OBC network and the offset-afflicted
 * (ofs-obc) network, at phase tolerances d = 0.01*pi and 0.1*pi,
 * over 1000 random unweighted 4-vertex graphs.
 *
 * Paper values: obc 94.1/94.1 and 94.2/94.1; offset-obc 54.1/54.1
 * recovering to 94.8/94.6 at the looser tolerance. The shape to
 * reproduce: the offset nonideality collapses accuracy at the tight
 * tolerance and a purely-digital tolerance change recovers it.
 */

#include <iostream>
#include <numbers>

#include "apps/experiments.h"
#include "paradigms/standard.h"
#include "support/table.h"

int
main()
{
    using namespace ark;
    namespace exp = apps::experiments;

    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &obc = registry.language("obc");
    const lang::Language &ofs = registry.language("ofs-obc");

    const int trials = 1000;
    std::cout << "== Table 1: OBC max-cut over " << trials
              << " random 4-vertex graphs ==\n\n";

    auto ideal = exp::runMaxcutSims(obc, /*withOffset=*/false, trials);
    auto offset = exp::runMaxcutSims(ofs, /*withOffset=*/true, trials);

    const double pi = std::numbers::pi;
    support::Table table({"d", "obc sync %", "obc solved %",
                          "ofs-obc sync %", "ofs-obc solved %"});
    for (double d : {0.01 * pi, 0.1 * pi}) {
        exp::ObcRow idealRow = exp::scoreMaxcut(ideal, d);
        exp::ObcRow offsetRow = exp::scoreMaxcut(offset, d);
        table.addNumericRow({d / pi, idealRow.syncProb,
                             idealRow.solvedProb, offsetRow.syncProb,
                             offsetRow.solvedProb},
                            4);
    }
    table.print(std::cout);
    std::cout << "\n(d column is in units of pi; paper: 94.1/94.1, "
                 "54.1/54.1 @ 0.01pi; 94.2/94.1, 94.8/94.6 @ 0.1pi)\n";
    return 0;
}
