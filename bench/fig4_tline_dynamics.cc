/**
 * @file
 * Figure 4: transient dynamics of t-lines observed at OUT_V.
 *
 *  (a) branched line — attenuated first pulse plus a late echo;
 *  (b) linear line — single ~0.5-amplitude pulse;
 *  (c) Cint-mismatched line over 100 instances — modest spread;
 *  (d) Gm-mismatched line over 100 instances — large spread.
 *
 * Prints summary statistics (the paper's qualitative claims as
 * numbers) followed by CSV series for plotting.
 */

#include <algorithm>
#include <iostream>

#include "apps/experiments.h"
#include "paradigms/standard.h"
#include "support/table.h"

int
main()
{
    using namespace ark;
    namespace exp = apps::experiments;

    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &tln = registry.language("tln");
    const lang::Language &gmc = registry.language("gmc-tln");

    std::cout << "== Figure 4: t-line dynamics at OUT_V ==\n\n";

    exp::TlnTrace linear = exp::fig4LinearTrace(tln);
    exp::TlnTrace branched = exp::fig4BranchedTrace(tln);

    const int trials = 100;
    auto cint = exp::fig4MismatchTraces(gmc, /*gmMismatch=*/false,
                                        trials);
    auto gm = exp::fig4MismatchTraces(gmc, /*gmMismatch=*/true, trials);
    exp::SpreadStats cintSpread =
        exp::spreadWithinWindow(cint, 1e-8, 3e-8);
    exp::SpreadStats gmSpread = exp::spreadWithinWindow(gm, 1e-8, 3e-8);

    support::Table summary({"series", "peak |v|", "late |v| (>4e-8)",
                            "spread mean", "spread max"});
    summary.addRow({"(b) linear",
                    std::to_string(linear.peak()),
                    std::to_string(linear.peakWithin(4e-8, 8e-8)), "-",
                    "-"});
    summary.addRow({"(a) branched",
                    std::to_string(branched.peak()),
                    std::to_string(branched.peakWithin(4e-8, 8e-8)), "-",
                    "-"});
    summary.addRow({"(c) Cint mm x100", "-", "-",
                    std::to_string(cintSpread.meanRange),
                    std::to_string(cintSpread.maxRange)});
    summary.addRow({"(d) Gm mm x100", "-", "-",
                    std::to_string(gmSpread.meanRange),
                    std::to_string(gmSpread.maxRange)});
    summary.print(std::cout);

    std::cout << "\npaper shape check: branched peak ("
              << branched.peak() << ") < linear peak (" << linear.peak()
              << "); echo after 4e-8 = "
              << branched.peakWithin(4e-8, 8e-8)
              << "; Gm spread / Cint spread = "
              << gmSpread.meanRange / cintSpread.meanRange << "x\n";

    // CSV series (decimated) for plotting figures 4a/4b.
    std::cout << "\n-- csv: t, linear, branched --\n";
    support::CsvWriter csv(std::cout);
    csv.writeRow(std::vector<std::string>{"t", "linear", "branched"});
    std::size_t n = std::min(linear.times.size(),
                             branched.times.size());
    for (std::size_t i = 0; i < n; i += 8) {
        csv.writeRow(std::vector<double>{linear.times[i],
                                         linear.volts[i],
                                         branched.volts[i]});
    }
    return 0;
}
