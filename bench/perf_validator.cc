/**
 * @file
 * Ablation: the validator's two exact decision procedures — the 0/1
 * branch-and-bound ILP of Algorithm 2 versus the lower-bounded
 * max-flow formulation — over the paradigm graphs with the richest
 * constraint patterns (CNN grids, TLN lines).
 */

#include <benchmark/benchmark.h>

#include "apps/image.h"
#include "paradigms/cnn.h"
#include "paradigms/standard.h"
#include "paradigms/tln.h"
#include "validator/validator.h"

namespace {

using namespace ark;

dg::Graph
makeCnnGraph(const lang::Language &cnn, int size)
{
    paradigms::cnn::CnnSpec spec;
    spec.width = size;
    spec.height = size;
    apps::Image input = apps::Image::filledSquare(size, 2);
    return paradigms::cnn::buildCnn(cnn, spec, input.pixels());
}

void
BM_ValidateCnn(benchmark::State &state)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &cnn = registry.language("cnn");
    dg::Graph graph = makeCnnGraph(cnn, static_cast<int>(state.range(0)));
    auto engine = static_cast<validator::Engine>(state.range(1));
    for (auto _ : state) {
        validator::ValidationResult result =
            validator::validate(graph, cnn, engine);
        benchmark::DoNotOptimize(result.ok);
    }
}
BENCHMARK(BM_ValidateCnn)
    ->ArgsProduct({{4, 8, 16},
                   {static_cast<long>(validator::Engine::Ilp),
                    static_cast<long>(validator::Engine::Flow)}})
    ->ArgNames({"grid", "engine(0=ilp,1=flow)"});

void
BM_ValidateTlnLine(benchmark::State &state)
{
    lang::LanguageRegistry registry = paradigms::makeStandardRegistry();
    const lang::Language &tln = registry.language("tln");
    paradigms::tln::LineSpec spec;
    spec.sections = static_cast<int>(state.range(0));
    dg::Graph graph = paradigms::tln::buildLine(tln, spec);
    auto engine = static_cast<validator::Engine>(state.range(1));
    for (auto _ : state) {
        validator::ValidationResult result =
            validator::validate(graph, tln, engine);
        benchmark::DoNotOptimize(result.ok);
    }
}
BENCHMARK(BM_ValidateTlnLine)
    ->ArgsProduct({{16, 64, 256},
                   {static_cast<long>(validator::Engine::Ilp),
                    static_cast<long>(validator::Engine::Flow)}})
    ->ArgNames({"sections", "engine(0=ilp,1=flow)"});

} // namespace
